package engine

import (
	"strings"

	"geoserp/internal/geo"
	"geoserp/internal/index"
	"geoserp/internal/queries"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
	"geoserp/internal/webcorpus"
)

// This file is the engine's extension point: the paper notes its
// methodology "can easily be extended to other countries and search
// engines", and NewCustom makes the synthetic target extensible the same
// way — callers supply their own query corpus, regional geography, and
// establishment taxonomy, and get a fully personalized engine over that
// world.

// RegionInfo anchors a content region (regional directories, local news
// outlets, namesake pages) to a centroid for reverse geocoding.
type RegionInfo struct {
	Region   webcorpus.Region
	Centroid geo.Point
}

// StudyRegions returns the paper's 22 US-state regions with their
// centroids.
func StudyRegions() []RegionInfo {
	byName := map[string]geo.Point{}
	for _, l := range geo.StudyDataset().At(geo.National) {
		byName[strings.TrimPrefix(l.ID, "state/")] = l.Point
	}
	regions := webcorpus.DefaultRegions()
	out := make([]RegionInfo, 0, len(regions))
	for _, r := range regions {
		out = append(out, RegionInfo{Region: r, Centroid: byName[r.Slug]})
	}
	return out
}

// Option customizes NewCustom's world.
type Option func(*worldSpec)

type worldSpec struct {
	corpus     *queries.Corpus
	regions    []RegionInfo
	placeKinds []webcorpus.PlaceKind
	tel        *telemetry.Registry
	retriever  Retriever
}

// WithCorpus substitutes the query corpus (and therefore the static web
// generated for it).
func WithCorpus(c *queries.Corpus) Option {
	return func(w *worldSpec) { w.corpus = c }
}

// WithRegions substitutes the regional geography.
func WithRegions(rs []RegionInfo) Option {
	return func(w *worldSpec) { w.regions = rs }
}

// WithPlaceKinds substitutes the establishment taxonomy backing local
// queries (keys must match local queries' IDs for them to draw places).
func WithPlaceKinds(ks []webcorpus.PlaceKind) Option {
	return func(w *worldSpec) { w.placeKinds = ks }
}

// WithTelemetry registers the engine's metrics on an existing registry so
// one /metricsz endpoint can expose the engine and its HTTP front end
// together. Without it the engine creates a private registry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(w *worldSpec) { w.tel = reg }
}

// WithRetriever substitutes the web-vertical retrieval backend — the
// cluster router passes its scatter-gather client here, turning the
// engine into the coordinator of a multi-node SERP cluster. The engine
// then skips building its own inverted index (the shards hold the
// postings); Places, News, and all personalization layers stay local.
func WithRetriever(r Retriever) Option {
	return func(w *worldSpec) { w.retriever = r }
}

// NewCustom builds an engine over a caller-defined world. Defaults match
// New: the study corpus, the 22 study regions, and the 33 study place
// kinds.
func NewCustom(cfg Config, clock simclock.Clock, opts ...Option) *Engine {
	cfg.validate()
	spec := &worldSpec{
		corpus:     queries.StudyCorpus(),
		regions:    StudyRegions(),
		placeKinds: webcorpus.DefaultPlaceKinds(),
	}
	for _, o := range opts {
		o(spec)
	}

	regions := make([]webcorpus.Region, len(spec.regions))
	regionPts := make(map[string]geo.Point, len(spec.regions))
	for i, ri := range spec.regions {
		regions[i] = ri.Region
		regionPts[ri.Region.Slug] = ri.Centroid
	}
	web := webcorpus.NewWeb(cfg.Seed, spec.corpus, regions)

	dcNames := make([]string, cfg.Datacenters)
	for i := range dcNames {
		dcNames[i] = dcName(i)
	}

	tel := spec.tel
	if tel == nil {
		tel = telemetry.NewRegistry()
	}

	retriever := spec.retriever
	if retriever == nil {
		retriever = localRetriever{idx: index.BuildFromWeb(web)}
	}

	return &Engine{
		cfg:       cfg,
		clock:     clock,
		wall:      simclock.Wall(),
		epoch:     clock.Now(),
		corpus:    spec.corpus,
		web:       web,
		places:    webcorpus.NewPlacesCustom(cfg.Seed, spec.placeKinds),
		news:      webcorpus.NewNewsWire(cfg.Seed, regions),
		retriever: retriever,
		regions:   regions,
		regionPts: regionPts,
		history:   newHistoryStore(cfg.HistoryWindow),
		limiter:   newRateLimiter(cfg.RateBurst, cfg.RatePerMinute),
		ipgeo:     newIPGeolocator(cfg.Seed, cfg.IPGeoErrorKm),
		dcNames:   dcNames,
		tel:       tel,
		inst:      newInstruments(tel, dcNames),
	}
}
