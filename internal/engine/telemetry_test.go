package engine

import (
	"strings"
	"testing"
	"time"

	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func TestTelemetryInstrumentsSearch(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.RateBurst = 2
	cfg.RatePerMinute = 0.001
	e := NewCustom(cfg, clk, WithTelemetry(reg))

	req := Request{Query: "Coffee", ClientIP: "10.0.0.1", Datacenter: "dc-0"}
	for i := 0; i < 2; i++ {
		if _, err := e.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Search(req); err != ErrRateLimited {
		t.Fatalf("third request: err = %v, want rate limited", err)
	}

	if e.Served() != 2 || e.RateLimited() != 1 {
		t.Fatalf("served=%d limited=%d", e.Served(), e.RateLimited())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"engine_served_total 2",
		"engine_ratelimited_total 1",
		`engine_requests_total{datacenter="dc-0"} 2`,
		"# TYPE engine_rank_duration_seconds histogram",
		"engine_rank_duration_seconds_count 2",
		"engine_history_lookup_duration_seconds_count 2",
		"engine_ratelimit_check_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestTelemetryPrivateRegistryByDefault(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	a := New(DefaultConfig(), clk)
	b := New(DefaultConfig(), clk)
	if a.Telemetry() == nil || a.Telemetry() == b.Telemetry() {
		t.Fatal("engines without WithTelemetry must get private registries")
	}
}
