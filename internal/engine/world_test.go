package engine

import (
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/webcorpus"
)

// ukCorpus builds a small non-US world: UK-flavoured local terms and
// regions, exercising the "extend to other countries" path from the
// paper's future work.
func ukWorld(t *testing.T) (*Engine, geo.Point, geo.Point) {
	t.Helper()
	corpus, err := queries.NewCorpus([]queries.Query{
		{Term: "Chemist", Category: queries.Local},
		{Term: "Greggs", Category: queries.Local, Brand: true},
		{Term: "Scottish Independence", Category: queries.Controversial},
		{Term: "Prime Minister", Category: queries.Politician, Scope: queries.ScopeNationalFigure},
	})
	if err != nil {
		t.Fatal(err)
	}
	london := geo.Point{Lat: 51.5074, Lon: -0.1278}
	edinburgh := geo.Point{Lat: 55.9533, Lon: -3.1883}
	regions := []RegionInfo{
		{Region: webcorpus.Region{Slug: "england", Name: "England"}, Centroid: london},
		{Region: webcorpus.Region{Slug: "scotland", Name: "Scotland"}, Centroid: edinburgh},
	}
	kinds := []webcorpus.PlaceKind{
		{Key: "chemist", Density: 1.2},
		{Key: "greggs", Density: 0.6, Brand: true},
	}
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := quietConfig()
	e := NewCustom(cfg, clk, WithCorpus(corpus), WithRegions(regions), WithPlaceKinds(kinds))
	return e, london, edinburgh
}

func TestNewCustomWorld(t *testing.T) {
	e, london, edinburgh := ukWorld(t)

	// Local generic term gets a maps card with local chemists.
	r, err := e.Search(Request{Query: "Chemist", GPS: &london, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Page.CardCount(serp.Maps) == 0 {
		t.Fatal("custom local term got no maps card")
	}
	if n := r.Page.LinkCount(); n < 8 {
		t.Fatalf("page has only %d links", n)
	}

	// Brand term gets no maps card, like the study's brands.
	r, err = e.Search(Request{Query: "Greggs", GPS: &london, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Page.CardCount(serp.Maps) != 0 {
		t.Fatal("custom brand term got a maps card")
	}

	// Regions resolve to the custom geography.
	if got := e.region(london); got != "england" {
		t.Fatalf("region(london) = %q", got)
	}
	if got := e.region(edinburgh); got != "scotland" {
		t.Fatalf("region(edinburgh) = %q", got)
	}

	// Location personalization holds in the custom world too.
	rl, err := e.Search(Request{Query: "Chemist", GPS: &london, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	re, err := e.Search(Request{Query: "Chemist", GPS: &edinburgh, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if equalStrings(rl.Page.Links(), re.Page.Links()) {
		t.Fatal("London and Edinburgh saw identical local results")
	}
}

func TestNewCustomDefaultsMatchNew(t *testing.T) {
	clk1 := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	clk2 := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	a := New(quietConfig(), clk1)
	b := NewCustom(quietConfig(), clk2)
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	for _, term := range []string{"Coffee", "Gay Marriage", "Barack Obama"} {
		ra, err := a.Search(Request{Query: term, GPS: &pt, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(Request{Query: term, GPS: &pt, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(ra.Page.Links(), rb.Page.Links()) {
			t.Fatalf("New and NewCustom defaults diverge for %q", term)
		}
	}
}

func TestStudyRegions(t *testing.T) {
	rs := StudyRegions()
	if len(rs) != 22 {
		t.Fatalf("regions = %d, want 22", len(rs))
	}
	for _, r := range rs {
		if r.Region.Slug == "" || !r.Centroid.Valid() || r.Centroid == (geo.Point{}) {
			t.Fatalf("bad region info: %+v", r)
		}
	}
}

func TestNewPlacesCustomDefaultsAndRepairs(t *testing.T) {
	p := webcorpus.NewPlacesCustom(1, []webcorpus.PlaceKind{
		{Key: "", Density: 1},                      // skipped: empty key
		{Key: "ghost", Density: 0},                 // skipped: zero density
		{Key: "pub", Density: 1.0},                 // suffix auto-filled
		{Key: "nandos", Density: 0.4, Brand: true}, // brand display auto-derived
	})
	if len(p.Kinds()) != 2 {
		t.Fatalf("kinds = %v", p.Kinds())
	}
	london := geo.Point{Lat: 51.5074, Lon: -0.1278}
	pubs := p.Near(london, "pub", 10)
	if len(pubs) == 0 {
		t.Fatal("no pubs generated")
	}
	for _, b := range pubs {
		if b.Name == "" {
			t.Fatal("pub with empty name")
		}
	}
	brands := p.Near(london, "nandos", 20)
	if len(brands) == 0 {
		t.Fatal("no brand outlets generated")
	}
	if got := brands[0].Name; len(got) < len("Nandos") || got[:6] != "Nandos" {
		t.Fatalf("brand display = %q", got)
	}
}
