package engine

import (
	"sync"
	"time"
)

// rateLimiter is a per-client-IP token bucket. The real engine's limiter is
// why the study spread its crawl over 44 machines in a /24; ours enforces
// the same constraint so the crawler's machine-pool design is load-bearing.
type rateLimiter struct {
	mu      sync.Mutex
	burst   float64
	perSec  float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(burst int, perMinute float64) *rateLimiter {
	return &rateLimiter{
		burst:   float64(burst),
		perSec:  perMinute / 60,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow reports whether a request from ip at time now is within budget,
// consuming one token if so.
func (r *rateLimiter) allow(ip string, now time.Time) bool {
	if ip == "" {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[ip]
	if !ok {
		b = &tokenBucket{tokens: r.burst, last: now}
		r.buckets[ip] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.perSec
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clients reports how many distinct IPs the limiter is tracking.
func (r *rateLimiter) clients() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}
