package engine

import (
	"sync"
	"time"
)

// rateLimiter is a per-client-IP token bucket. The real engine's limiter is
// why the study spread its crawl over 44 machines in a /24; ours enforces
// the same constraint so the crawler's machine-pool design is load-bearing.
type rateLimiter struct {
	mu      sync.Mutex
	burst   float64
	perSec  float64
	buckets map[string]*tokenBucket
	// refillFull is how long an idle bucket takes to refill completely.
	// A bucket idle that long is indistinguishable from a fresh one, so
	// it can be evicted without changing any admission decision — the
	// fix for the unbounded per-IP map growth that leaked one bucket per
	// client forever across 10^4-10^6-user campaigns.
	refillFull time.Duration
	// lastSweep is when the eviction pass last ran; sweeps are amortized
	// to at most one map scan per refill interval.
	lastSweep time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(burst int, perMinute float64) *rateLimiter {
	r := &rateLimiter{
		burst:   float64(burst),
		perSec:  perMinute / 60,
		buckets: make(map[string]*tokenBucket),
	}
	if r.perSec > 0 {
		r.refillFull = time.Duration(r.burst / r.perSec * float64(time.Second))
	}
	return r
}

// allow reports whether a request from ip at time now is within budget,
// consuming one token if so.
func (r *rateLimiter) allow(ip string, now time.Time) bool {
	if ip == "" {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeEvict(now)
	b, ok := r.buckets[ip]
	if !ok {
		b = &tokenBucket{tokens: r.burst, last: now}
		r.buckets[ip] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.perSec
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// maybeEvict drops buckets that have been idle for at least a full refill
// interval: such a bucket is back at full burst, so evicting it is
// behaviorally identical to keeping it and the map stays bounded by the
// number of IPs active within the last window. Called under r.mu; scans
// at most once per refill interval so the amortized cost per request is
// O(1). Eviction decisions are per-entry and order-independent, so map
// iteration order cannot perturb admission behavior.
func (r *rateLimiter) maybeEvict(now time.Time) {
	if r.refillFull <= 0 {
		return
	}
	if r.lastSweep.IsZero() {
		r.lastSweep = now
		return
	}
	if now.Sub(r.lastSweep) < r.refillFull {
		return
	}
	r.lastSweep = now
	for ip, b := range r.buckets {
		if now.Sub(b.last) >= r.refillFull {
			delete(r.buckets, ip)
		}
	}
}

// clients reports how many distinct IPs the limiter is tracking.
func (r *rateLimiter) clients() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}
