// Package engine implements the synthetic personalized search engine that
// stands in for Google Search in this reproduction. It assembles mobile
// result pages from three verticals (Web, Places, News), personalizes them
// on the request's GPS coordinate (falling back to IP geolocation),
// remembers per-session search history for ten minutes, rate-limits client
// IPs, and serves from several datacenter replicas with slight ranking
// skew. Its noise model — A/B buckets plus per-request score jitter — is
// calibrated so that the paper's measurement pipeline reproduces the
// shapes of every figure (see DESIGN.md).
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"geoserp/internal/detrand"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
	"geoserp/internal/webcorpus"
)

// ErrRateLimited is returned when a client IP exceeds its request budget.
var ErrRateLimited = errors.New("engine: rate limited")

// ErrEmptyQuery is returned for blank queries.
var ErrEmptyQuery = errors.New("engine: empty query")

// ErrDeadlineExceeded is returned when a request's propagated deadline
// (Request.Deadline, from the client's X-Deadline-Ms header) passes before
// the page is assembled. The engine checks between ranking stages so
// doomed work is abandoned mid-flight instead of finishing a page the
// client has already given up on.
var ErrDeadlineExceeded = errors.New("engine: request deadline exceeded")

// Request is one search request as the engine sees it.
type Request struct {
	// Query is the search term.
	Query string
	// GPS is the coordinate reported by the client's Geolocation API,
	// or nil when the client did not grant one. GPS takes priority over
	// IP geolocation (§2.2 validation).
	GPS *geo.Point
	// ClientIP is the request's source address (rate limiting, IP
	// geolocation fallback, datacenter routing).
	ClientIP string
	// SessionID identifies the cookie session ("" = cookieless). Search
	// history personalization applies within a session for ten minutes.
	SessionID string
	// Datacenter pins the request to a named replica, emulating the
	// study's static DNS mapping; "" routes by client IP hash.
	Datacenter string
	// UserAgent is recorded but — matching the paper's finding that
	// browser/OS do not trigger personalization — never affects results.
	UserAgent string
	// TraceID is the client-supplied X-Trace-Id ("" = untraced). When set
	// it keys the request's noise draws, making traced campaigns
	// byte-for-byte reproducible regardless of arrival order; untraced
	// traffic falls back to an arrival-order sequence number.
	TraceID string
	// Span, when non-nil, is the caller's server span; Search hangs one
	// child span per ranking stage off it (parse, noise, history,
	// retrieve, rerank, assemble) so a divergent card can be attributed to
	// the stage that produced it. A nil Span costs only nil checks.
	Span *telemetry.Span
	// Deadline, when non-zero, is the absolute instant (on the engine's
	// clock domain) by which the client needs the page. Search abandons
	// work between stages once it passes, returning ErrDeadlineExceeded.
	// The serpserver handler fills it from X-Deadline-Ms.
	Deadline time.Time
	// Wide, when non-nil, is the request's wide-event record: Search adds
	// one entry per ranking stage (hardware duration, same clock domain as
	// the stage histograms), and a distributed retriever appends its
	// per-shard legs. A nil Wide costs only nil checks.
	Wide *telemetry.WideEvent
}

// Response is a served page plus the serving metadata the study could not
// see but our tests can.
type Response struct {
	Page *serp.Page
	// Bucket is the A/B experiment bucket the request was assigned.
	Bucket int
	// Datacenter is the replica that served the request.
	Datacenter string
	// Location is the coordinate the engine personalized for.
	Location geo.Point
	// LocationSource is "gps" or "ip".
	LocationSource string
	// Partial reports that the web vertical was assembled from an
	// incomplete retrieval backend (some cluster shards unavailable); the
	// HTTP front end surfaces it as the X-Serp-Partial header.
	Partial bool
}

// queryClass is the engine's internal query-intent taxonomy.
type queryClass int

const (
	classGeneral queryClass = iota
	classLocalBrand
	classLocalGeneric
	classControversial
	classPolitician
)

// Engine is the synthetic search service. It is safe for concurrent use.
type Engine struct {
	cfg   Config
	clock simclock.Clock
	// wall times the stage histograms: they measure how long the hardware
	// actually took, independent of whatever virtual schedule clock is
	// simulating. Injected (rather than calling time.Now directly) so all
	// time flows through the simclock API — geoserplint enforces this.
	wall   simclock.Clock
	epoch  time.Time
	corpus *queries.Corpus
	web    *webcorpus.Web
	places *webcorpus.Places
	news   *webcorpus.NewsWire
	// retriever answers the web vertical: the local inverted index by
	// default, a scatter-gather client over shard nodes in the cluster
	// router (WithRetriever).
	retriever Retriever
	regions   []webcorpus.Region
	// regionPts maps region slug to its centroid for coarse reverse
	// geocoding of the query coordinate.
	regionPts map[string]geo.Point
	history   *historyStore
	limiter   *rateLimiter
	ipgeo     *ipGeolocator
	dcNames   []string
	// reqCount drives per-request randomness (bucket draw, jitter); it
	// stays an engine-internal atomic so observability can never perturb
	// the noise model.
	reqCount atomic.Uint64
	tel      *telemetry.Registry
	inst     instruments
}

// instruments are the engine's registered metrics, pre-resolved at
// construction so the Search hot path touches only atomics.
type instruments struct {
	served  *telemetry.Counter
	limited *telemetry.Counter
	// dcCounters are the engine_requests_total children, index-aligned
	// with dcNames.
	requestsByDC *telemetry.CounterVec
	dcCounters   []*telemetry.Counter
	rankDur      *telemetry.Histogram
	historyDur   *telemetry.Histogram
	ratelimitDur *telemetry.Histogram
	// stage holds the engine_stage_duration_seconds children, one per
	// ranking stage, pre-resolved so Search never takes the vec's lock.
	stageParse    *telemetry.Histogram
	stageNoise    *telemetry.Histogram
	stageHistory  *telemetry.Histogram
	stageRetrieve *telemetry.Histogram
	stageRerank   *telemetry.Histogram
	stageAssemble *telemetry.Histogram
	// deadlineAbandoned counts requests abandoned mid-stage because their
	// propagated deadline passed (engine_deadline_abandoned_total).
	deadlineAbandoned *telemetry.Counter
	// retrievePartial counts pages assembled from an incomplete
	// retrieval backend (engine_retrieve_partial_total).
	retrievePartial *telemetry.Counter
}

// newInstruments registers the engine's metric families on reg.
func newInstruments(reg *telemetry.Registry, dcNames []string) instruments {
	inst := instruments{
		served:       reg.Counter("engine_served_total", "Pages served."),
		limited:      reg.Counter("engine_ratelimited_total", "Requests rejected by the per-IP rate limiter."),
		requestsByDC: reg.CounterVec("engine_requests_total", "Requests served, by datacenter replica.", "datacenter"),
		rankDur:      reg.Histogram("engine_rank_duration_seconds", "Wall-clock time scoring and assembling the result page.", nil),
		historyDur:   reg.Histogram("engine_history_lookup_duration_seconds", "Wall-clock time of the session-history lookup.", nil),
		ratelimitDur: reg.Histogram("engine_ratelimit_check_duration_seconds", "Wall-clock time of the rate-limiter check.", nil),
		deadlineAbandoned: reg.Counter("engine_deadline_abandoned_total",
			"Requests abandoned between ranking stages because their propagated deadline passed."),
		retrievePartial: reg.Counter("engine_retrieve_partial_total",
			"Pages assembled from an incomplete retrieval backend (cluster shards unavailable)."),
	}
	inst.dcCounters = make([]*telemetry.Counter, len(dcNames))
	for i, name := range dcNames {
		inst.dcCounters[i] = inst.requestsByDC.With(name)
	}
	stages := reg.HistogramVec("engine_stage_duration_seconds",
		"Wall-clock time per ranking stage (matches the engine.* span names).", "stage", nil)
	inst.stageParse = stages.With("parse")
	inst.stageNoise = stages.With("noise")
	inst.stageHistory = stages.With("history")
	inst.stageRetrieve = stages.With("retrieve")
	inst.stageRerank = stages.With("rerank")
	inst.stageAssemble = stages.With("assemble")
	return inst
}

// New builds an engine over the study corpus: the full 240-query web, the
// Places grid, the news wire, and the 22 state regions. The epoch (day 0)
// is the clock's time at construction. For a caller-defined world (other
// corpora, regions, or establishment taxonomies) use NewCustom.
func New(cfg Config, clock simclock.Clock) *Engine {
	return NewCustom(cfg, clock)
}

// dcName returns the canonical replica name for index i.
func dcName(i int) string { return fmt.Sprintf("dc-%d", i) }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Datacenters returns the replica names.
func (e *Engine) Datacenters() []string {
	out := make([]string, len(e.dcNames))
	copy(out, e.dcNames)
	return out
}

// Day returns the current simulation day (0-based from the epoch).
func (e *Engine) Day() int {
	return int(e.clock.Now().Sub(e.epoch) / (24 * time.Hour))
}

// Served returns how many pages the engine has served.
func (e *Engine) Served() uint64 { return e.inst.served.Value() }

// RateLimited returns how many requests were rejected by the limiter.
func (e *Engine) RateLimited() uint64 { return e.inst.limited.Value() }

// ServedByDatacenter returns per-replica serve counts.
func (e *Engine) ServedByDatacenter() map[string]uint64 {
	out := make(map[string]uint64, len(e.dcNames))
	for i, name := range e.dcNames {
		out[name] = e.inst.dcCounters[i].Value()
	}
	return out
}

// Telemetry returns the engine's metrics registry. The serpserver handler
// exposes it at /metricsz; callers wanting one registry across engine and
// HTTP front end pass theirs via WithTelemetry.
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// dcIndex returns the index of a replica name (-1 if unknown).
func (e *Engine) dcIndex(name string) int {
	for i, d := range e.dcNames {
		if d == name {
			return i
		}
	}
	return -1
}

// RegisterIPLocation pins an IP prefix to a known geolocation (emulating a
// geolocation database entry for, e.g., a PlanetLab site).
func (e *Engine) RegisterIPLocation(ip string, pt geo.Point) {
	e.ipgeo.register(ip, pt)
}

// classify maps a query term to its intent class and topic ID.
func (e *Engine) classify(term string) (queryClass, string) {
	if q, ok := e.corpus.ByTerm(term); ok {
		switch {
		case q.Category == queries.Local && q.Brand:
			return classLocalBrand, q.ID()
		case q.Category == queries.Local:
			return classLocalGeneric, q.ID()
		case q.Category == queries.Controversial:
			return classControversial, q.ID()
		default:
			return classPolitician, q.ID()
		}
	}
	// Unknown term: local intent if a place kind matches its slug.
	id := (queries.Query{Term: term}).ID()
	if k, ok := e.places.Kind(id); ok {
		if k.Brand {
			return classLocalBrand, id
		}
		return classLocalGeneric, id
	}
	return classGeneral, id
}

// region returns the slug of the state region nearest to pt.
func (e *Engine) region(pt geo.Point) string {
	best := ""
	bestD := math.Inf(1)
	for slugName, c := range e.regionPts {
		if d := geo.DistanceKm(pt, c); d < bestD {
			best, bestD = slugName, d
		}
	}
	return best
}

// bucketParams are the per-A/B-bucket policy perturbations.
type bucketParams struct {
	placeMult float64
	mapsProb  float64
	mapsSize  int
	newsSize  int
}

func (e *Engine) bucket(i int, baseMapsProb float64) bucketParams {
	rng := detrand.NewKeyed(e.cfg.Seed, "bucket", fmt.Sprint(i))
	bp := bucketParams{
		placeMult: 1 + e.cfg.BucketWeightSpread*(2*rng.Float64()-1),
		mapsProb:  clamp01(baseMapsProb + rng.Range(-0.06, 0.06)),
		mapsSize:  e.cfg.MapsCardSize,
		newsSize:  e.cfg.NewsCardSize,
	}
	if rng.Bool(0.15) {
		bp.mapsSize++
	}
	if rng.Bool(0.10) && bp.newsSize > 2 {
		bp.newsSize--
	}
	return bp
}

// dcSkew returns the replica's ranking-weight multipliers.
func (e *Engine) dcSkew(dc string) (authMult, regionMult float64) {
	rng := detrand.NewKeyed(e.cfg.Seed, "dc", dc)
	s := e.cfg.ReplicaSkew
	return 1 + s*(2*rng.Float64()-1), 1 + s*(2*rng.Float64()-1)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// candidate is a scored organic-result candidate.
type candidate struct {
	res   serp.Result
	score float64
}

// Search executes a request and returns the served page.
func (e *Engine) Search(req Request) (*Response, error) {
	if strings.TrimSpace(req.Query) == "" {
		return nil, ErrEmptyQuery
	}
	now := e.clock.Now()
	// Stage timers use e.wall, not e.clock: under virtual time the
	// simulated clock measures campaign schedule, while these histograms
	// measure how long the hardware actually took.
	rlStart := e.wall.Now()
	allowed := e.limiter.allow(req.ClientIP, now)
	e.inst.ratelimitDur.ObserveSince(rlStart)
	if !allowed {
		e.inst.limited.Inc()
		return nil, ErrRateLimited
	}
	// Deadline checks run between stages — never while a stage span is
	// open — so an abandoned request still leaves a well-formed timeline.
	if e.pastDeadline(req.Deadline) {
		return nil, ErrDeadlineExceeded
	}

	// --- Stage: parse (replica routing, location resolution, intent) ---
	parseSpan := req.Span.StartChild("engine.parse")
	parseStart := e.wall.Now()

	// Replica routing: pinned, or hashed from the client IP the way
	// anycast DNS would spread clients.
	dc := req.Datacenter
	if dc == "" || !e.validDC(dc) {
		dc = e.dcNames[detrand.Hash(prefix24(req.ClientIP))%uint64(len(e.dcNames))]
	}

	// Location resolution: GPS beats IP.
	var loc geo.Point
	source := "ip"
	if req.GPS != nil && req.GPS.Valid() {
		loc, source = *req.GPS, "gps"
	} else {
		loc = e.ipgeo.locate(req.ClientIP)
	}
	qRegion := e.region(loc)
	day := e.Day()

	class, topic := e.classify(req.Query)
	parseDur := e.wall.Now().Sub(parseStart)
	e.inst.stageParse.Observe(parseDur.Seconds())
	req.Wide.Stage("parse", parseDur)
	parseSpan.SetAttr("datacenter", dc)
	parseSpan.SetAttr("location_source", source)
	parseSpan.SetAttr("region", qRegion)
	parseSpan.End()
	if e.pastDeadline(req.Deadline) {
		return nil, ErrDeadlineExceeded
	}

	// Per-request randomness: bucket assignment and score jitter. Two
	// simultaneous identical requests draw distinct keys — distinct trace
	// IDs when the client traces its traffic (treatment and control mint
	// different roles into theirs), distinct sequence numbers otherwise —
	// which is the engine-side noise the paper measures with
	// treatment/control pairs. Keying on the trace ID rather than the
	// arrival order makes traced campaigns reproducible: concurrent fetch
	// interleaving no longer feeds the noise model.
	noiseSpan := req.Span.StartChild("engine.noise")
	noiseStart := e.wall.Now()
	seqNo := e.reqCount.Add(1)
	if seqNo%4096 == 0 {
		// Amortized cleanup of abandoned one-shot sessions (crawlers
		// that clear cookies never revisit theirs).
		e.history.pruneExpired(now)
	}
	noiseKey := req.TraceID
	if noiseKey == "" {
		noiseKey = fmt.Sprint(seqNo)
	}
	rrng := detrand.NewKeyed(e.cfg.Seed, "request", noiseKey)
	baseMapsProb, baseNewsProb := 0.0, 0.0
	switch class {
	case classLocalGeneric:
		baseMapsProb = e.cfg.MapsCardProb
	case classControversial:
		baseNewsProb = e.cfg.NewsCardProbControversial
	case classPolitician:
		baseNewsProb = e.cfg.NewsCardProbPolitician
	}
	bucketNo := rrng.Intn(e.cfg.Buckets)
	bp := e.bucket(bucketNo, baseMapsProb)
	authMult, regionMult := e.dcSkew(dc)
	noiseDur := e.wall.Now().Sub(noiseStart)
	e.inst.stageNoise.Observe(noiseDur.Seconds())
	req.Wide.Stage("noise", noiseDur)
	if noiseSpan != nil { // attr formatting allocates; skip it untraced
		noiseSpan.SetAttr("bucket", fmt.Sprint(bucketNo))
	}
	noiseSpan.End()

	histSpan := req.Span.StartChild("engine.history")
	histStart := e.wall.Now()
	recent := e.history.recent(req.SessionID, now)
	histDur := e.wall.Now().Sub(histStart)
	e.inst.historyDur.Observe(histDur.Seconds())
	e.inst.stageHistory.Observe(histDur.Seconds())
	req.Wide.Stage("history", histDur)
	histSpan.End()
	if e.pastDeadline(req.Deadline) {
		return nil, ErrDeadlineExceeded
	}
	jitter := func(sigma float64) float64 { return rrng.Norm() * sigma }

	rankStart := e.wall.Now()

	// --- Web vertical ---
	retrieveSpan := req.Span.StartChild("engine.retrieve")
	retrieveStart := e.wall.Now()
	ret, retErr := e.retriever.Retrieve(RetrieveRequest{
		Query:    req.Query,
		K:        48,
		TraceID:  req.TraceID,
		Deadline: req.Deadline,
		Span:     retrieveSpan,
		Wide:     req.Wide,
	})
	retrieveDur := e.wall.Now().Sub(retrieveStart)
	e.inst.stageRetrieve.Observe(retrieveDur.Seconds())
	req.Wide.Stage("retrieve", retrieveDur)
	if retrieveSpan != nil {
		retrieveSpan.SetAttr("hits", fmt.Sprint(len(ret.Hits)))
		if ret.Partial {
			retrieveSpan.SetAttr("partial", "true")
		}
		if retErr != nil {
			retrieveSpan.SetAttr("error", retErr.Error())
		}
	}
	retrieveSpan.End()
	if retErr != nil {
		// A total backend failure is unanswerable; a PARTIAL one was
		// already folded into ret.Hits and degrades the page instead.
		return nil, retErr
	}
	hits := ret.Hits
	if ret.Partial {
		e.inst.retrievePartial.Inc()
	}
	rerankSpan := req.Span.StartChild("engine.rerank")
	rerankStart := e.wall.Now()
	var cands []candidate
	maxRel := 0.0
	for _, h := range hits {
		if h.Score > maxRel {
			maxRel = h.Score
		}
	}
	for _, h := range hits {
		rel := 0.0
		if maxRel > 0 {
			rel = h.Score / maxRel
		}
		auth := h.Doc.Authority
		if h.Doc.Region != "" && h.Doc.Region != qRegion {
			// Region-tagged content is demoted outside its region: a
			// Texas local guide is a poor answer in Ohio.
			auth *= e.cfg.OffRegionPenalty
		}
		s := e.cfg.WebRelWeight*rel + e.cfg.AuthWeight*auth*authMult
		if h.Doc.Region != "" && h.Doc.Region == qRegion {
			s += e.cfg.RegionBoost * regionMult
		}
		for _, t := range recent {
			if t == h.Doc.Topic {
				s += e.cfg.HistoryBoost
				break
			}
		}
		s += jitter(e.cfg.WebJitterSigma)
		cands = append(cands, candidate{
			res:   serp.Result{URL: h.Doc.URL, Title: h.Doc.Title},
			score: s,
		})
	}

	// --- Places vertical ---
	var mapsCard *serp.Card
	if class == classLocalBrand || class == classLocalGeneric {
		placeCands := e.placeCandidates(loc, topic, bp.placeMult, jitter)
		// Maps card: generic local intent only, subject to the bucket's
		// probability — the presence flip is the paper's dominant
		// Maps-attributed noise.
		nMaps := 0
		if class == classLocalGeneric && len(placeCands) >= 3 && rrng.Bool(bp.mapsProb) {
			nMaps = bp.mapsSize
			if nMaps > len(placeCands) {
				nMaps = len(placeCands)
			}
			card := serp.Card{Type: serp.Maps}
			for _, pc := range placeCands[:nMaps] {
				card.Results = append(card.Results, pc.res)
			}
			mapsCard = &card
		}
		// Remaining top places compete as organic results.
		rest := placeCands[nMaps:]
		if len(rest) > e.cfg.MaxPlaceOrganic {
			rest = rest[:e.cfg.MaxPlaceOrganic]
		}
		cands = append(cands, rest...)
	}

	// --- News vertical ---
	// Whether a topic has news coverage on a given day is a property of
	// the topic and the day, not of the request: two simultaneous
	// identical queries agree on News-card presence, and the small News
	// noise of §3.1 comes only from article selection within the card.
	var newsCard *serp.Card
	hasNews := baseNewsProb > 0 &&
		detrand.NewKeyed(e.cfg.Seed, "newspresence", topic, fmt.Sprint(day)).Bool(baseNewsProb)
	if hasNews {
		arts := e.news.Topical(topic, day)
		type scoredArt struct {
			a webcorpus.Article
			s float64
		}
		scored := make([]scoredArt, 0, len(arts))
		for _, a := range arts {
			s := a.Freshness + jitter(e.cfg.NewsJitterSigma)
			if a.Region != "" && a.Region == qRegion {
				s += e.cfg.NewsRegionBoost
			}
			scored = append(scored, scoredArt{a, s})
		}
		sort.Slice(scored, func(i, j int) bool {
			if scored[i].s != scored[j].s {
				return scored[i].s > scored[j].s
			}
			return scored[i].a.URL < scored[j].a.URL
		})
		n := bp.newsSize
		if n > len(scored) {
			n = len(scored)
		}
		if n >= 2 {
			card := serp.Card{Type: serp.News}
			for _, sa := range scored[:n] {
				card.Results = append(card.Results, serp.Result{URL: sa.a.URL, Title: sa.a.Title})
			}
			newsCard = &card
		}
	}

	rerankDur := e.wall.Now().Sub(rerankStart)
	e.inst.stageRerank.Observe(rerankDur.Seconds())
	req.Wide.Stage("rerank", rerankDur)
	if rerankSpan != nil {
		rerankSpan.SetAttr("candidates", fmt.Sprint(len(cands)))
	}
	rerankSpan.End()
	if e.pastDeadline(req.Deadline) {
		return nil, ErrDeadlineExceeded
	}

	// --- Assembly ---
	assembleSpan := req.Span.StartChild("engine.assemble")
	assembleStart := e.wall.Now()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].res.URL < cands[j].res.URL
	})
	nOrganic := e.cfg.OrganicCards
	if nOrganic > len(cands) {
		nOrganic = len(cands)
	}
	page := &serp.Page{
		Query:      req.Query,
		Location:   loc.String(),
		Datacenter: dc,
		Day:        day,
	}
	seen := make(map[string]bool)
	appendOrganic := func(c candidate) {
		if seen[c.res.URL] {
			return
		}
		seen[c.res.URL] = true
		page.Cards = append(page.Cards, serp.Card{Type: serp.Organic, Results: []serp.Result{c.res}})
	}
	// The News card's slot is a property of the day's layout, not of the
	// request: randomizing it per request would shift every link below it
	// and register as large phantom noise.
	newsPos := 2 + int(detrand.Hash("newspos", topic, fmt.Sprint(day))%3)
	placed := 0
	for _, c := range cands {
		if placed >= nOrganic {
			break
		}
		if placed == 1 && mapsCard != nil {
			page.Cards = append(page.Cards, *mapsCard)
			mapsCard = nil
		}
		if placed == newsPos && newsCard != nil {
			page.Cards = append(page.Cards, *newsCard)
			newsCard = nil
		}
		before := len(page.Cards)
		appendOrganic(c)
		if len(page.Cards) > before {
			placed++
		}
	}
	// Cards that never found their slot (short pages) go at the end.
	if mapsCard != nil {
		page.Cards = append(page.Cards, *mapsCard)
	}
	if newsCard != nil {
		page.Cards = append(page.Cards, *newsCard)
	}
	assembleDur := e.wall.Now().Sub(assembleStart)
	e.inst.stageAssemble.Observe(assembleDur.Seconds())
	req.Wide.Stage("assemble", assembleDur)
	if assembleSpan != nil {
		assembleSpan.SetAttr("cards", fmt.Sprint(len(page.Cards)))
	}
	assembleSpan.End()

	e.inst.rankDur.ObserveSince(rankStart)
	e.history.record(req.SessionID, topic, now)
	e.inst.served.Inc()
	if i := e.dcIndex(dc); i >= 0 {
		e.inst.dcCounters[i].Inc()
	}
	return &Response{
		Page:           page,
		Bucket:         bucketNo,
		Datacenter:     dc,
		Location:       loc,
		LocationSource: source,
		Partial:        ret.Partial,
	}, nil
}

// pastDeadline reports whether a propagated deadline has passed on the
// engine's clock, counting the abandonment when it has. A zero deadline
// (no X-Deadline-Ms header) never passes.
func (e *Engine) pastDeadline(deadline time.Time) bool {
	if deadline.IsZero() || !e.clock.Now().After(deadline) {
		return false
	}
	e.inst.deadlineAbandoned.Inc()
	return true
}

// placeCandidates returns scored place-backed candidates near loc, best
// first. The radius doubles until enough candidates exist, so sparse kinds
// (airport, college) are ranked over a wide — and therefore highly
// location-sensitive — area.
func (e *Engine) placeCandidates(loc geo.Point, kind string, placeMult float64, jitter func(float64) float64) []candidate {
	radius := e.cfg.PlaceRadiusKm
	var businesses []webcorpus.Business
	for {
		businesses = e.places.Near(loc, kind, radius)
		if len(businesses) >= e.cfg.MinPlaces || radius >= e.cfg.PlaceRadiusMaxKm {
			break
		}
		radius *= 2
		if radius > e.cfg.PlaceRadiusMaxKm {
			radius = e.cfg.PlaceRadiusMaxKm
		}
	}
	// Proximity is normalized to the nearest candidate: the closest
	// establishment of a kind is the canonical answer whether it is 500m
	// away (coffee) or 20km away (airport). This keeps sparse kinds on
	// the page while preserving distance-ordered ranking.
	dmin := math.Inf(1)
	for _, b := range businesses {
		if d := geo.DistanceKm(loc, b.Point); d < dmin {
			dmin = d
		}
	}
	out := make([]candidate, 0, len(businesses))
	for _, b := range businesses {
		d := geo.DistanceKm(loc, b.Point)
		proximity := math.Exp(-math.Ln2 * (d - dmin) / e.cfg.ProximityHalfKm)
		s := e.cfg.PlaceWeight*placeMult*proximity + e.cfg.PopWeight*b.Popularity + jitter(e.cfg.PlaceJitterSigma)
		out = append(out, candidate{
			res:   serp.Result{URL: b.URL, Title: b.Name},
			score: s,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].res.URL < out[j].res.URL
	})
	return out
}

func (e *Engine) validDC(name string) bool {
	for _, d := range e.dcNames {
		if d == name {
			return true
		}
	}
	return false
}
