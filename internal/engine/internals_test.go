package engine

import (
	"fmt"
	"testing"
	"time"

	"geoserp/internal/geo"
)

var t0 = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func TestHistoryStoreWindow(t *testing.T) {
	h := newHistoryStore(10 * time.Minute)
	h.record("s", "coffee", t0)
	h.record("s", "school", t0.Add(2*time.Minute))

	got := h.recent("s", t0.Add(5*time.Minute))
	if len(got) != 2 {
		t.Fatalf("recent = %v, want 2 topics", got)
	}
	// Most recent first.
	if got[0] != "school" || got[1] != "coffee" {
		t.Fatalf("recent order = %v", got)
	}
	// After the window only the newer entry survives.
	got = h.recent("s", t0.Add(11*time.Minute))
	if len(got) != 1 || got[0] != "school" {
		t.Fatalf("recent after partial expiry = %v", got)
	}
	// Everything expires eventually, and the session is pruned.
	if got := h.recent("s", t0.Add(30*time.Minute)); len(got) != 0 {
		t.Fatalf("recent after full expiry = %v", got)
	}
	if h.sessionCount() != 0 {
		t.Fatalf("expired session not pruned: %d", h.sessionCount())
	}
}

func TestHistoryStoreDeduplicatesTopics(t *testing.T) {
	h := newHistoryStore(10 * time.Minute)
	h.record("s", "coffee", t0)
	h.record("s", "coffee", t0.Add(time.Minute))
	if got := h.recent("s", t0.Add(2*time.Minute)); len(got) != 1 {
		t.Fatalf("recent = %v, want deduplicated", got)
	}
}

func TestHistoryStoreEmptySession(t *testing.T) {
	h := newHistoryStore(10 * time.Minute)
	h.record("", "coffee", t0)
	if h.sessionCount() != 0 {
		t.Fatal("empty session recorded")
	}
	if got := h.recent("", t0); got != nil {
		t.Fatalf("recent(\"\") = %v", got)
	}
}

func TestRateLimiterRefillCap(t *testing.T) {
	r := newRateLimiter(2, 60)
	if !r.allow("a", t0) || !r.allow("a", t0) {
		t.Fatal("burst rejected")
	}
	if r.allow("a", t0) {
		t.Fatal("over-burst allowed")
	}
	// A long idle period must not accumulate more than the burst.
	later := t0.Add(time.Hour)
	if !r.allow("a", later) || !r.allow("a", later) {
		t.Fatal("refilled tokens rejected")
	}
	if r.allow("a", later) {
		t.Fatal("tokens accumulated beyond burst cap")
	}
	if r.clients() != 1 {
		t.Fatalf("clients = %d", r.clients())
	}
}

// TestRateLimiterEvictsIdleBuckets is the regression test for the
// unbounded per-IP map: a large rotating-IP sweep (each client hits the
// engine once and never returns, the shape of a 10^4+-user campaign) must
// not accumulate one bucket per IP forever. Buckets idle long enough to
// have refilled completely are indistinguishable from fresh ones and are
// evicted, so the map stays bounded by the recently-active set.
func TestRateLimiterEvictsIdleBuckets(t *testing.T) {
	r := newRateLimiter(5, 60) // refill-complete after 5s idle
	now := t0
	maxClients := 0
	const sweep = 10_000
	for i := 0; i < sweep; i++ {
		ip := fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&0xff, i&0xff)
		if !r.allow(ip, now) {
			t.Fatalf("fresh IP %s rejected", ip)
		}
		if c := r.clients(); c > maxClients {
			maxClients = c
		}
		now = now.Add(time.Second) // one new client per second
	}
	// With a 5s refill window and one fresh IP per second, only a handful
	// of buckets are ever live between sweeps; anywhere near the sweep
	// size means the leak is back.
	if maxClients > 32 {
		t.Fatalf("limiter tracked up to %d clients across a %d-IP sweep; eviction is not bounding the map", maxClients, sweep)
	}
	if final := r.clients(); final > 32 {
		t.Fatalf("limiter still tracking %d clients after the sweep", final)
	}

	// Eviction must not change admission behavior: an IP that drained its
	// burst and comes back before refill is still limited...
	r2 := newRateLimiter(2, 60)
	base := t0
	r2.allow("b", base)
	r2.allow("b", base)
	if r2.allow("b", base.Add(500*time.Millisecond)) {
		t.Fatal("drained bucket allowed before refill")
	}
	// ...while one that comes back after a full refill gets exactly a
	// fresh burst, whether its bucket was evicted or retained.
	if !r2.allow("b", base.Add(time.Minute)) || !r2.allow("b", base.Add(time.Minute)) {
		t.Fatal("refilled client rejected")
	}
	if r2.allow("b", base.Add(time.Minute)) {
		t.Fatal("evicted-and-recreated bucket granted more than one burst")
	}
}

func TestRateLimiterEmptyIPUnlimited(t *testing.T) {
	r := newRateLimiter(1, 1)
	for i := 0; i < 10; i++ {
		if !r.allow("", t0) {
			t.Fatal("empty IP limited")
		}
	}
	if r.clients() != 0 {
		t.Fatal("empty IP tracked")
	}
}

func TestIPGeolocatorPrefixGranularity(t *testing.T) {
	g := newIPGeolocator(1, 0) // perfect database for this test
	g.register("192.168.1.5", geo.Point{Lat: 40, Lon: -80})
	// Same /24 → same registered location.
	p := g.locate("192.168.1.200")
	if p.Lat != 40 || p.Lon != -80 {
		t.Fatalf("same-/24 lookup = %v", p)
	}
	// Different /24 → synthesized, deterministic, valid.
	a := g.locate("192.168.2.5")
	b := g.locate("192.168.2.99")
	if a != b {
		t.Fatal("same /24 synthesized differently")
	}
	if !a.Valid() {
		t.Fatalf("synthesized point invalid: %v", a)
	}
	c := g.locate("10.0.0.1")
	if c == a {
		t.Fatal("distinct prefixes collided (vanishingly unlikely)")
	}
	// Non-IPv4 strings are hashed whole, not rejected.
	if p := g.locate("not-an-ip"); !p.Valid() {
		t.Fatalf("non-IP locate invalid: %v", p)
	}
}

func TestIPGeolocatorDatabaseError(t *testing.T) {
	g := newIPGeolocator(1, 25)
	base := geo.Point{Lat: 41.5, Lon: -81.7}
	g.register("10.1.1.1", base)
	p1 := g.locate("10.1.1.1")
	p2 := g.locate("10.1.1.200") // same /24 → same error offset
	if p1 != p2 {
		t.Fatal("error offset not stable within a /24")
	}
	d := geo.DistanceKm(base, p1)
	if d <= 0 || d > 25.001 {
		t.Fatalf("database error = %.1f km, want in (0, 25]", d)
	}
	// Different prefixes get independent offsets.
	g.register("10.1.2.1", base)
	if g.locate("10.1.2.1") == p1 {
		t.Fatal("distinct prefixes share an error offset (vanishingly unlikely)")
	}
	// Negative error is clamped to zero.
	g0 := newIPGeolocator(1, -5)
	g0.register("10.9.9.9", base)
	if g0.locate("10.9.9.9") != base {
		t.Fatal("negative error not clamped")
	}
}

func TestPrefix24(t *testing.T) {
	cases := map[string]string{
		"1.2.3.4":   "1.2.3",
		"10.0.0.1":  "10.0.0",
		"host-7":    "host-7",
		"1.2.3.4.5": "1.2.3.4.5",
	}
	for in, want := range cases {
		if got := prefix24(in); got != want {
			t.Fatalf("prefix24(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigValidateRepairsBadValues(t *testing.T) {
	cfg := Config{Seed: 5, Datacenters: -1, Buckets: 0, OrganicCards: 0,
		MapsCardSize: 0, NewsCardSize: -2, PlaceRadiusKm: 0, MinPlaces: 0}
	cfg.validate()
	d := DefaultConfig()
	if cfg.Datacenters != d.Datacenters || cfg.Buckets != d.Buckets ||
		cfg.OrganicCards != d.OrganicCards || cfg.MapsCardSize != d.MapsCardSize ||
		cfg.NewsCardSize != d.NewsCardSize || cfg.PlaceRadiusKm != d.PlaceRadiusKm ||
		cfg.MinPlaces != d.MinPlaces || cfg.HistoryWindow != d.HistoryWindow ||
		cfg.RateBurst != d.RateBurst {
		t.Fatalf("validate did not repair config: %+v", cfg)
	}
	if cfg.Seed != 5 {
		t.Fatal("validate clobbered seed")
	}
}

func TestRegionReverseGeocode(t *testing.T) {
	e, _ := newQuietEngine()
	cases := map[string]geo.Point{
		"ohio":       {Lat: 41.4993, Lon: -81.6944}, // Cleveland
		"california": {Lat: 34.0522, Lon: -118.2437},
		"texas":      {Lat: 29.7604, Lon: -95.3698},
		"new-york":   {Lat: 43.0481, Lon: -76.1474}, // Syracuse, near the NY centroid
	}
	for want, pt := range cases {
		if got := e.region(pt); got != want {
			t.Errorf("region(%v) = %q, want %q", pt, got, want)
		}
	}
}

func TestBucketParamsDeterministic(t *testing.T) {
	e, _ := newQuietEngine()
	a := e.bucket(3, 0.87)
	b := e.bucket(3, 0.87)
	if a != b {
		t.Fatalf("bucket params not deterministic: %+v vs %+v", a, b)
	}
	if a.mapsProb < 0 || a.mapsProb > 1 {
		t.Fatalf("mapsProb = %v", a.mapsProb)
	}
	if a.mapsSize < 3 || a.newsSize < 2 {
		t.Fatalf("card sizes too small: %+v", a)
	}
}
