package engine

import (
	"fmt"
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/queries"
	"geoserp/internal/simclock"
)

// This file checks the engine against the paper's shape targets (DESIGN.md):
// the relative magnitudes of noise and personalization across query
// categories and granularities. Bands are deliberately generous — we are
// matching shapes, not the authors' absolute numbers.

type calibStats struct {
	noiseJ, noiseE float64
	persJ, persE   float64
}

// measure computes average noise (treatment vs control) and personalization
// (all pairs of locations) for the given queries at granularity g.
func measure(t *testing.T, e *Engine, qs []queries.Query, locs []geo.Location) calibStats {
	t.Helper()
	var s calibStats
	var nNoise, nPers int
	for _, q := range qs {
		var links [][]string
		for _, l := range locs {
			pt := l.Point
			r1, err := e.Search(Request{Query: q.Term, GPS: &pt, ClientIP: "10.1.0.1"})
			if err != nil {
				t.Fatalf("search %q: %v", q.Term, err)
			}
			r2, err := e.Search(Request{Query: q.Term, GPS: &pt, ClientIP: "10.1.0.2"})
			if err != nil {
				t.Fatalf("search %q: %v", q.Term, err)
			}
			cm := metrics.ComparePages(r1.Page, r2.Page)
			s.noiseJ += cm.Jaccard
			s.noiseE += float64(cm.EditDistance)
			nNoise++
			links = append(links, r1.Page.Links())
		}
		for i := 0; i < len(links); i++ {
			for j := i + 1; j < len(links); j++ {
				s.persJ += metrics.Jaccard(links[i], links[j])
				s.persE += float64(metrics.EditDistance(links[i], links[j]))
				nPers++
			}
		}
	}
	s.noiseJ /= float64(nNoise)
	s.noiseE /= float64(nNoise)
	s.persJ /= float64(nPers)
	s.persE /= float64(nPers)
	return s
}

func newTestEngine() *Engine {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	// Plenty of rate-limit headroom for the calibration loops.
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	return New(cfg, clk)
}

func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	e := newTestEngine()
	ds := geo.StudyDataset()
	c := queries.StudyCorpus()

	cats := map[string][]queries.Query{
		"local":         c.Category(queries.Local),
		"controversial": c.Category(queries.Controversial)[:24],
		"politician":    c.Category(queries.Politician)[:24],
	}

	stats := map[string]map[string]calibStats{}
	for _, g := range geo.Granularities {
		locs := ds.At(g)
		if len(locs) > 8 {
			locs = locs[:8]
		}
		stats[g.Short()] = map[string]calibStats{}
		for cat, qs := range cats {
			s := measure(t, e, qs, locs)
			stats[g.Short()][cat] = s
			t.Logf("%-10s %-14s noise J=%.3f E=%.2f | pers J=%.3f E=%.2f",
				g.Short(), cat, s.noiseJ, s.noiseE, s.persJ, s.persE)
		}
	}

	// Shape 1 (Fig 2): local noise far exceeds controversial/politician
	// noise, at every granularity.
	for g, byCat := range stats {
		if byCat["local"].noiseE < 1.0 {
			t.Errorf("%s: local noise edit %.2f, want >= 1", g, byCat["local"].noiseE)
		}
		if byCat["local"].noiseE > 6.0 {
			t.Errorf("%s: local noise edit %.2f, want <= 6", g, byCat["local"].noiseE)
		}
		for _, cat := range []string{"controversial", "politician"} {
			if byCat[cat].noiseE > 1.5 {
				t.Errorf("%s: %s noise edit %.2f, want <= 1.5", g, cat, byCat[cat].noiseE)
			}
			if byCat[cat].noiseE > byCat["local"].noiseE {
				t.Errorf("%s: %s noisier than local", g, cat)
			}
		}
	}

	// Shape 2 (Fig 2): noise is roughly uniform across granularities.
	ln := []float64{
		stats["county"]["local"].noiseE,
		stats["state"]["local"].noiseE,
		stats["national"]["local"].noiseE,
	}
	for _, v := range ln[1:] {
		if v < ln[0]*0.4 || v > ln[0]*2.5 {
			t.Errorf("local noise not uniform across granularities: %v", ln)
		}
	}

	// Shape 3 (Fig 5): local personalization grows with distance and far
	// exceeds noise.
	pc := stats["county"]["local"].persE
	ps := stats["state"]["local"].persE
	pn := stats["national"]["local"].persE
	if !(pc < ps && ps <= pn*1.15) {
		t.Errorf("local personalization not growing: county=%.2f state=%.2f national=%.2f", pc, ps, pn)
	}
	if pc < stats["county"]["local"].noiseE+1 {
		t.Errorf("county local personalization %.2f not above noise %.2f",
			pc, stats["county"]["local"].noiseE)
	}
	if ps < 6 || ps > 16 {
		t.Errorf("state local personalization edit %.2f, want ~6-16", ps)
	}
	// Jaccard at national: paper reports 0.66 (18-34%% of results vary).
	if j := stats["national"]["local"].persJ; j < 0.45 || j > 0.9 {
		t.Errorf("national local personalization jaccard %.3f, want 0.45-0.9", j)
	}

	// Shape 4 (Fig 5): controversial and politician personalization stays
	// near the noise floor at county level, and rises only modestly.
	for _, cat := range []string{"controversial", "politician"} {
		county := stats["county"][cat]
		if county.persE > county.noiseE+1.5 {
			t.Errorf("county %s personalization %.2f far above noise %.2f",
				cat, county.persE, county.noiseE)
		}
		national := stats["national"][cat]
		if national.persE > stats["national"]["local"].persE {
			t.Errorf("national %s personalization exceeds local", cat)
		}
	}

	// Shape 5: at national granularity, controversial personalization is
	// measurably above its own noise floor (regional results exist) but
	// small in absolute terms.
	nc := stats["national"]["controversial"]
	if nc.persE < nc.noiseE {
		t.Errorf("national controversial personalization %.2f below noise %.2f", nc.persE, nc.noiseE)
	}
}

func TestCalibrationBrandVsGeneric(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	e := newTestEngine()
	ds := geo.StudyDataset()
	c := queries.StudyCorpus()
	locs := ds.At(geo.State)[:8]

	var brands, generics []queries.Query
	for _, q := range c.Category(queries.Local) {
		if q.Brand {
			brands = append(brands, q)
		} else {
			generics = append(generics, q)
		}
	}
	bs := measure(t, e, brands, locs)
	gs := measure(t, e, generics, locs)
	t.Logf("brands   noise E=%.2f pers E=%.2f", bs.noiseE, bs.persE)
	t.Logf("generics noise E=%.2f pers E=%.2f", gs.noiseE, gs.persE)
	// Fig 3 / Fig 6: brand terms are quieter and less personalized than
	// generic terms.
	if bs.noiseE >= gs.noiseE {
		t.Errorf("brand noise %.2f >= generic noise %.2f", bs.noiseE, gs.noiseE)
	}
	if bs.persE >= gs.persE {
		t.Errorf("brand personalization %.2f >= generic %.2f", bs.persE, gs.persE)
	}
}

func TestCalibrationTypeAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	e := newTestEngine()
	ds := geo.StudyDataset()
	c := queries.StudyCorpus()

	// Maps share of local personalization should be a minority (the
	// paper's surprise: most changes hit "typical" results), and News
	// share of local differences should be ~0.
	locs := ds.At(geo.State)[:8]
	var maps, news, other int
	for _, q := range c.Category(queries.Local) {
		if q.Brand {
			continue
		}
		var pages []*Response
		for _, l := range locs {
			pt := l.Point
			r, err := e.Search(Request{Query: q.Term, GPS: &pt, ClientIP: "10.2.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, r)
		}
		for i := 0; i < len(pages); i++ {
			for j := i + 1; j < len(pages); j++ {
				bd := metrics.BreakdownPages(pages[i].Page, pages[j].Page)
				maps += bd.Maps
				news += bd.News
				other += bd.Other
			}
		}
	}
	total := maps + news + other
	if total == 0 {
		t.Fatal("no local personalization at state level")
	}
	mapsShare := float64(maps) / float64(total)
	newsShare := float64(news) / float64(total)
	t.Logf("local state-level attribution: maps=%.2f news=%.2f other=%.2f",
		mapsShare, newsShare, float64(other)/float64(total))
	if mapsShare < 0.08 || mapsShare > 0.45 {
		t.Errorf("maps share of local personalization = %.2f, want 0.08-0.45 (paper: 18-27%%)", mapsShare)
	}
	if newsShare > 0.02 {
		t.Errorf("news share of local personalization = %.2f, want ~0", newsShare)
	}

	// News share of controversial personalization should be small but
	// nonzero at national granularity (paper: 6-18%).
	nlocs := ds.At(geo.National)[:8]
	maps, news, other = 0, 0, 0
	for _, q := range c.Category(queries.Controversial)[:30] {
		var pages []*Response
		for _, l := range nlocs {
			pt := l.Point
			r, err := e.Search(Request{Query: q.Term, GPS: &pt, ClientIP: "10.2.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, r)
		}
		for i := 0; i < len(pages); i++ {
			for j := i + 1; j < len(pages); j++ {
				bd := metrics.BreakdownPages(pages[i].Page, pages[j].Page)
				maps += bd.Maps
				news += bd.News
				other += bd.Other
			}
		}
	}
	total = maps + news + other
	if total == 0 {
		t.Fatal("no controversial personalization at national level")
	}
	newsShare = float64(news) / float64(total)
	t.Logf("controversial national attribution: news=%.2f", newsShare)
	if newsShare < 0.03 || newsShare > 0.6 {
		t.Errorf("news share of controversial personalization = %.2f, want 0.03-0.6 (paper: 6-18%%)", newsShare)
	}
	if maps != 0 {
		t.Errorf("controversial queries produced maps differences: %d", maps)
	}
}

// fmt is used by helper logging in some builds.
var _ = fmt.Sprintf
