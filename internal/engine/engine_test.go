package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
)

var cleveland = geo.Point{Lat: 41.4993, Lon: -81.6944}

// quietConfig disables every stochastic mechanism, producing a fully
// deterministic engine for behavioral tests.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.WebJitterSigma = 0
	cfg.PlaceJitterSigma = 0
	cfg.NewsJitterSigma = 0
	cfg.Buckets = 1
	cfg.BucketWeightSpread = 0
	cfg.Datacenters = 1
	cfg.ReplicaSkew = 0
	cfg.MapsCardProb = 1.0
	cfg.IPGeoErrorKm = 0
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	return cfg
}

func newQuietEngine() (*Engine, *simclock.Manual) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	return New(quietConfig(), clk), clk
}

func TestSearchEmptyQuery(t *testing.T) {
	e, _ := newQuietEngine()
	if _, err := e.Search(Request{Query: "  ", ClientIP: "1.2.3.4"}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("err = %v, want ErrEmptyQuery", err)
	}
}

func TestSearchBasicPage(t *testing.T) {
	e, _ := newQuietEngine()
	r, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Page.Validate(); err != nil {
		t.Fatalf("invalid page: %v", err)
	}
	if n := r.Page.LinkCount(); n < 12 || n > 22 {
		t.Fatalf("page has %d links, want 12-22 (paper's observed range)", n)
	}
	if r.Page.Query != "Coffee" {
		t.Fatalf("page query = %q", r.Page.Query)
	}
	if r.LocationSource != "gps" {
		t.Fatalf("location source = %q, want gps", r.LocationSource)
	}
	if r.Page.Location != cleveland.String() {
		t.Fatalf("reported location %q, want %q (Google reports the user's "+
			"precise location at the bottom of search results)", r.Page.Location, cleveland.String())
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func() []string {
		e, _ := newQuietEngine()
		var links []string
		for _, term := range []string{"Coffee", "Gay Marriage", "Barack Obama"} {
			r, err := e.Search(Request{Query: term, GPS: &cleveland, ClientIP: "1.2.3.4"})
			if err != nil {
				t.Fatal(err)
			}
			links = append(links, r.Page.Links()...)
		}
		return links
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed engines diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGPSTakesPriorityOverIP(t *testing.T) {
	// §2.2 validation: identical queries with the same GPS coordinate
	// from completely different IPs yield identical pages (quiet config
	// removes the residual noise the paper measured at 6%).
	e, _ := newQuietEngine()
	var first []string
	for i := 0; i < 10; i++ {
		ip := fmt.Sprintf("%d.%d.0.9", 11+i*13, i*7+1)
		r, err := e.Search(Request{Query: "Gay Marriage", GPS: &cleveland, ClientIP: ip})
		if err != nil {
			t.Fatal(err)
		}
		if r.LocationSource != "gps" {
			t.Fatalf("location source = %q", r.LocationSource)
		}
		if first == nil {
			first = r.Page.Links()
			continue
		}
		links := r.Page.Links()
		if len(links) != len(first) {
			t.Fatalf("IP %s changed page length", ip)
		}
		for j := range links {
			if links[j] != first[j] {
				t.Fatalf("IP %s changed results despite fixed GPS", ip)
			}
		}
	}
}

func TestIPFallbackWhenNoGPS(t *testing.T) {
	e, _ := newQuietEngine()
	e.RegisterIPLocation("5.6.7.8", cleveland)
	r, err := e.Search(Request{Query: "Coffee", ClientIP: "5.6.7.8"})
	if err != nil {
		t.Fatal(err)
	}
	if r.LocationSource != "ip" {
		t.Fatalf("location source = %q, want ip", r.LocationSource)
	}
	if geo.DistanceKm(r.Location, cleveland) > 1 {
		t.Fatalf("registered IP geolocated to %v, want %v", r.Location, cleveland)
	}
	// Unknown IPs geolocate deterministically.
	r1, _ := e.Search(Request{Query: "Coffee", ClientIP: "99.98.97.96"})
	r2, _ := e.Search(Request{Query: "Coffee", ClientIP: "99.98.97.96"})
	if r1.Location != r2.Location {
		t.Fatal("IP geolocation not deterministic")
	}
	if !r1.Location.Valid() {
		t.Fatalf("synthesized location invalid: %v", r1.Location)
	}
	// Invalid GPS coordinates also fall back to IP.
	bad := geo.Point{Lat: 999, Lon: 0}
	r3, err := e.Search(Request{Query: "Coffee", GPS: &bad, ClientIP: "5.6.7.8"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.LocationSource != "ip" {
		t.Fatalf("invalid GPS not ignored: source = %q", r3.LocationSource)
	}
}

func TestCardPolicies(t *testing.T) {
	e, _ := newQuietEngine()
	cases := []struct {
		term     string
		wantMaps bool
		wantNews bool
	}{
		{"School", true, false},     // generic local: maps, never news
		{"Starbucks", false, false}, // brand: no maps (paper §3.1)
		{"Barack Obama", false, true},
	}
	for _, c := range cases {
		r, err := e.Search(Request{Query: c.term, GPS: &cleveland, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		gotMaps := r.Page.CardCount(serpMaps) > 0
		if gotMaps != c.wantMaps {
			t.Errorf("%s: maps card = %v, want %v", c.term, gotMaps, c.wantMaps)
		}
		gotNews := r.Page.CardCount(serpNews) > 0
		if c.wantNews != gotNews && c.term != "Barack Obama" {
			t.Errorf("%s: news card = %v, want %v", c.term, gotNews, c.wantNews)
		}
	}
	// Controversial terms: news presence is per-topic/day; across many
	// topics most should have a news card (prob 0.90).
	withNews := 0
	terms := []string{"Gay Marriage", "Abortion", "Health", "Obamacare", "Fracking",
		"Gun Control", "Minimum Wage", "Climate Change", "Net Neutrality", "Death Penalty"}
	for _, term := range terms {
		r, err := e.Search(Request{Query: term, GPS: &cleveland, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		if r.Page.CardCount(serpNews) > 0 {
			withNews++
		}
		if r.Page.CardCount(serpMaps) > 0 {
			t.Errorf("%s: controversial query produced a maps card", term)
		}
	}
	if withNews < 6 {
		t.Errorf("only %d/10 controversial terms had news cards", withNews)
	}
}

func TestHistoryPersonalizationWindow(t *testing.T) {
	// The paper waits 11 minutes between queries because Google
	// personalizes on the previous 10 minutes of searches. Verify both
	// sides of that boundary.
	e, clk := newQuietEngine()
	session := "sess-1"
	fresh := func() []string {
		// A no-history page for the same query from a throwaway session.
		r, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		return r.Page.Links()
	}
	baseline := fresh()

	// Prime the session with a related search, then query within the
	// window: results must differ from the no-history baseline.
	if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4", SessionID: session}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Minute)
	r, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4", SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	within := r.Page.Links()
	if equalStrings(baseline, within) {
		t.Fatal("search history within 10 minutes had no effect")
	}

	// After 11 idle minutes the history must have expired.
	clk.Advance(11 * time.Minute)
	r, err = e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4", SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	after := r.Page.Links()
	if !equalStrings(baseline, after) {
		t.Fatal("history effect persisted past the 10-minute window")
	}
}

func TestCookielessSessionsHaveNoHistory(t *testing.T) {
	e, clk := newQuietEngine()
	r1, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	clk.Advance(time.Minute)
	r2, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if !equalStrings(r1.Page.Links(), r2.Page.Links()) {
		t.Fatal("cookieless requests influenced each other")
	}
	if e.history.sessionCount() != 0 {
		t.Fatalf("cookieless requests created %d sessions", e.history.sessionCount())
	}
}

func TestRateLimiting(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := quietConfig()
	cfg.RateBurst = 5
	cfg.RatePerMinute = 60 // one token per second
	e := New(cfg, clk)
	for i := 0; i < 5; i++ {
		if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "9.9.9.9"}); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
	}
	if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "9.9.9.9"}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	// A different IP is unaffected — the reason the study used 44
	// machines in a /24.
	if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "9.9.9.10"}); err != nil {
		t.Fatalf("other IP rejected: %v", err)
	}
	// Tokens refill with time.
	clk.Advance(2 * time.Second)
	if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "9.9.9.9"}); err != nil {
		t.Fatalf("request after refill rejected: %v", err)
	}
	if e.RateLimited() != 1 {
		t.Fatalf("RateLimited = %d, want 1", e.RateLimited())
	}
}

func TestDatacenterPinning(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := quietConfig()
	cfg.Datacenters = 3
	e := New(cfg, clk)
	r, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4", Datacenter: "dc-2"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Datacenter != "dc-2" || r.Page.Datacenter != "dc-2" {
		t.Fatalf("pinned datacenter ignored: %s / %s", r.Datacenter, r.Page.Datacenter)
	}
	// Unknown datacenter names fall back to IP-hash routing.
	r, err = e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4", Datacenter: "dc-99"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Datacenter == "dc-99" {
		t.Fatal("invalid datacenter accepted")
	}
	// Same IP always routes to the same replica (same /24 → same DC).
	r2, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	r3, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if r2.Datacenter != r3.Datacenter {
		t.Fatal("IP-hash routing not stable")
	}
	if got := len(e.Datacenters()); got != 3 {
		t.Fatalf("Datacenters() = %d, want 3", got)
	}
}

func TestReplicaSkewChangesResults(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := quietConfig()
	cfg.Datacenters = 3
	cfg.ReplicaSkew = 0.15
	e := New(cfg, clk)
	// With meaningful skew, at least one query should come back
	// differently from different replicas.
	differs := false
	for _, term := range []string{"Coffee", "School", "Hospital", "Bank", "Park"} {
		ra, _ := e.Search(Request{Query: term, GPS: &cleveland, ClientIP: "1.1.1.1", Datacenter: "dc-0"})
		rb, _ := e.Search(Request{Query: term, GPS: &cleveland, ClientIP: "1.1.1.1", Datacenter: "dc-1"})
		if !equalStrings(ra.Page.Links(), rb.Page.Links()) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("replica skew produced no differences across datacenters")
	}
}

func TestDayAdvances(t *testing.T) {
	e, clk := newQuietEngine()
	if e.Day() != 0 {
		t.Fatalf("day = %d, want 0", e.Day())
	}
	clk.Advance(24*time.Hour + time.Minute)
	if e.Day() != 1 {
		t.Fatalf("day = %d, want 1", e.Day())
	}
	r, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if r.Page.Day != 1 {
		t.Fatalf("page day = %d, want 1", r.Page.Day)
	}
}

func TestNewsRotatesAcrossDays(t *testing.T) {
	e, clk := newQuietEngine()
	links := func() []string {
		r, err := e.Search(Request{Query: "Health", GPS: &cleveland, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		return r.Page.LinksOfType(serpNews)
	}
	d0 := links()
	clk.Advance(3 * 24 * time.Hour)
	d3 := links()
	if len(d0) > 0 && len(d3) > 0 && equalStrings(d0, d3) {
		t.Fatal("news card identical across 3 days")
	}
}

func TestClassify(t *testing.T) {
	e, _ := newQuietEngine()
	cases := []struct {
		term  string
		class queryClass
	}{
		{"Starbucks", classLocalBrand},
		{"School", classLocalGeneric},
		{"Gay Marriage", classControversial},
		{"Tim Ryan", classPolitician},
		{"quantum chromodynamics", classGeneral},
		{"high school", classLocalGeneric}, // unknown casing → place-kind match
	}
	for _, c := range cases {
		got, topic := e.classify(c.term)
		if got != c.class {
			t.Errorf("classify(%q) = %v, want %v", c.term, got, c.class)
		}
		if topic == "" {
			t.Errorf("classify(%q) returned empty topic", c.term)
		}
	}
}

func TestServedCounter(t *testing.T) {
	e, _ := newQuietEngine()
	for i := 0; i < 4; i++ {
		if _, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Served() != 4 {
		t.Fatalf("Served = %d, want 4", e.Served())
	}
}

func TestConcurrentSearches(t *testing.T) {
	e, _ := newQuietEngine()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			terms := []string{"Coffee", "School", "Gay Marriage", "Barack Obama"}
			for j := 0; j < 20; j++ {
				req := Request{
					Query:     terms[(i+j)%len(terms)],
					GPS:       &cleveland,
					ClientIP:  fmt.Sprintf("10.0.%d.%d", i, j),
					SessionID: fmt.Sprintf("s-%d", i),
				}
				if _, err := e.Search(req); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if e.Served() != 16*20 {
		t.Fatalf("Served = %d, want %d", e.Served(), 16*20)
	}
}

func TestUserAgentDoesNotPersonalize(t *testing.T) {
	// The paper's prior work found browser/OS choice does not trigger
	// personalization; our engine honours that.
	e, _ := newQuietEngine()
	r1, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4",
		UserAgent: "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) Safari/600.1.4"})
	r2, _ := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4",
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64) Firefox/38.0"})
	if !equalStrings(r1.Page.Links(), r2.Page.Links()) {
		t.Fatal("user agent changed results")
	}
}

func TestNoisyEngineStillWithinLinkBudget(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	e := New(cfg, clk)
	terms := []string{"School", "Coffee", "Airport", "Starbucks", "Gay Marriage",
		"Barack Obama", "Tim Ryan", "Health"}
	for _, term := range terms {
		for i := 0; i < 5; i++ {
			r, err := e.Search(Request{Query: term, GPS: &cleveland, ClientIP: "1.2.3.4"})
			if err != nil {
				t.Fatal(err)
			}
			if n := r.Page.LinkCount(); n < 10 || n > 22 {
				t.Fatalf("%s: page has %d links, want 10-22", term, n)
			}
			if err := r.Page.Validate(); err != nil {
				t.Fatalf("%s: %v", term, err)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Aliases keep the card-type references short in the tests above.
const (
	serpMaps = serp.Maps
	serpNews = serp.News
)

var _ = metrics.Jaccard

func TestResponseBucketPopulated(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.Buckets = 8
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	e := New(cfg, clk)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		r, err := e.Search(Request{Query: "Coffee", GPS: &cleveland, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatal(err)
		}
		if r.Bucket < 0 || r.Bucket >= 8 {
			t.Fatalf("bucket = %d", r.Bucket)
		}
		seen[r.Bucket] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct buckets over 64 requests", len(seen))
	}
}

func TestIPMethodologyCannotResolveCountyScale(t *testing.T) {
	// The paper's methodological contribution: prior work could only
	// vary the IP address, and geolocation databases carry tens of km of
	// error — far coarser than the 1-mile spacing of voting districts.
	// GPS spoofing resolves exactly.
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := quietConfig()
	cfg.IPGeoErrorKm = 25
	e := New(cfg, clk)

	districtSpacingKm := geo.KmPerMile // ~1.6 km
	base := cleveland
	var ipErrors []float64
	for i := 0; i < 8; i++ {
		truePt := geo.Destination(base, 90, float64(i)*districtSpacingKm)
		ip := fmt.Sprintf("10.30.%d.1", i)
		e.RegisterIPLocation(ip, truePt)

		// IP-based methodology: no GPS override.
		r, err := e.Search(Request{Query: "School", ClientIP: ip})
		if err != nil {
			t.Fatal(err)
		}
		ipErrors = append(ipErrors, geo.DistanceKm(r.Location, truePt))

		// GPS methodology: exact.
		rg, err := e.Search(Request{Query: "School", GPS: &truePt, ClientIP: ip})
		if err != nil {
			t.Fatal(err)
		}
		if d := geo.DistanceKm(rg.Location, truePt); d > 0.001 {
			t.Fatalf("GPS methodology off by %.3f km", d)
		}
	}
	// Most IP resolutions must miss by more than the district spacing.
	coarse := 0
	for _, d := range ipErrors {
		if d > districtSpacingKm {
			coarse++
		}
	}
	if coarse < len(ipErrors)*3/4 {
		t.Fatalf("IP geolocation resolved %d/%d districts within 1 mile — "+
			"too accurate to motivate GPS spoofing", len(ipErrors)-coarse, len(ipErrors))
	}
}

func TestGeneralQueryServes(t *testing.T) {
	// Unknown terms fall back to the general web path: retrieval over the
	// static index only, no maps or news cards.
	e, _ := newQuietEngine()
	r, err := e.Search(Request{Query: "global warming", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Page.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Page.LinkCount() == 0 {
		t.Fatal("general query returned no results")
	}
	if r.Page.CardCount(serp.Maps) != 0 || r.Page.CardCount(serp.News) != 0 {
		t.Fatal("general query received meta cards")
	}
}
