package engine

import "time"

// Config holds every tunable of the synthetic engine. The defaults are
// calibrated so the measurement pipeline reproduces the shapes of the
// paper's figures (see DESIGN.md "shape targets"); each knob is documented
// with the phenomenon it controls.
type Config struct {
	// Seed is the root of all deterministic randomness (corpus content,
	// bucket assignment, jitter). Two engines with equal seeds serve the
	// same web and the same noise sequence.
	Seed uint64

	// Datacenters is the number of replica datacenters. Each replica has
	// a small deterministic skew on its ranking weights, so queries that
	// hit different datacenters see slightly different pages — the reason
	// the study pinned DNS to a single datacenter.
	Datacenters int

	// ReplicaSkew scales the per-datacenter ranking-weight perturbation.
	ReplicaSkew float64

	// Buckets is the number of concurrent A/B experiment buckets. Every
	// request is assigned a bucket; buckets perturb ranking weights and
	// card policies, which is the dominant source of the result noise
	// the paper measures between simultaneous identical queries (§3.1).
	Buckets int

	// BucketWeightSpread scales how strongly a bucket perturbs the
	// place-ranking weight (multiplier drawn from 1 ± spread).
	BucketWeightSpread float64

	// WebJitterSigma is the per-request gaussian score jitter applied to
	// static web documents. It is small: authoritative documents have
	// well-separated scores, so identical simultaneous queries for
	// controversial terms and politicians come back nearly identical
	// (the low noise floors of Figure 2).
	WebJitterSigma float64

	// PlaceJitterSigma is the per-request jitter applied to place-backed
	// results. Nearby places have near-tied scores, so this term makes
	// local queries noisy — the paper's most surprising finding (§3.1).
	PlaceJitterSigma float64

	// NewsJitterSigma is the per-request jitter applied to news-article
	// selection, the source of the small News-attributed noise of
	// controversial queries.
	NewsJitterSigma float64

	// MapsCardProb is the probability that a generic-local query gets a
	// Maps card (brands never do, matching §3.1). The flip between "has
	// Maps" and "no Maps" is the paper's main Maps-attributed noise.
	MapsCardProb float64

	// MapsCardSize is the base number of places on a Maps card; some
	// buckets use one more.
	MapsCardSize int

	// NewsCardProbControversial / NewsCardProbPolitician are the
	// probabilities that those query classes receive an "In the News"
	// card. Local queries never do (Figure 4: News ≈ 0 for local).
	NewsCardProbControversial float64
	NewsCardProbPolitician    float64

	// NewsCardSize is the base number of articles on a News card.
	NewsCardSize int

	// OrganicCards is the number of single-result cards per page.
	OrganicCards int

	// PlaceRadiusKm is the initial Places search radius; it doubles (up
	// to PlaceRadiusMaxKm) until MinPlaces candidates are found, so
	// sparse kinds (airports) draw from a wide, location-sensitive area.
	PlaceRadiusKm    float64
	PlaceRadiusMaxKm float64
	MinPlaces        int

	// MaxPlaceOrganic caps how many place-backed results can appear as
	// organic (non-Maps) cards.
	MaxPlaceOrganic int

	// ProximityHalfKm is the excess distance (beyond the nearest
	// candidate) at which a place's proximity score halves — the length
	// scale of location personalization.
	ProximityHalfKm float64

	// OffRegionPenalty multiplies the authority of region-tagged
	// documents when the query comes from a different region.
	OffRegionPenalty float64

	// IPGeoErrorKm bounds the per-prefix error of the IP-geolocation
	// database. Real databases are city-accurate at best; the default of
	// 25 km is why IP-based measurement (all prior work could do) cannot
	// resolve the paper's 1-mile county-level question and GPS spoofing
	// was required.
	IPGeoErrorKm float64

	// Ranking weights for organic scoring.
	WebRelWeight    float64 // index relevance
	AuthWeight      float64 // document authority
	RegionBoost     float64 // bonus for documents tied to the query's state
	PlaceWeight     float64 // base weight of place-backed results
	PopWeight       float64 // place popularity contribution
	NewsRegionBoost float64 // bonus for regional articles in the query's state

	// HistoryWindow is how long a session's previous searches influence
	// ranking; the paper measured ~10 minutes on Google and therefore
	// waited 11 minutes between queries.
	HistoryWindow time.Duration
	// HistoryBoost is the score bonus for documents topically related to
	// a recent same-session search.
	HistoryBoost float64

	// Rate limiting per client IP (token bucket). The study spread its
	// load over 44 machines to stay under the real engine's limiter.
	RateBurst     int
	RatePerMinute float64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Datacenters:        3,
		ReplicaSkew:        0.06,
		Buckets:            8,
		BucketWeightSpread: 0.10,
		WebJitterSigma:     0.0015,
		PlaceJitterSigma:   0.022,
		NewsJitterSigma:    0.012,

		MapsCardProb: 0.87,
		MapsCardSize: 3,

		NewsCardProbControversial: 0.90,
		NewsCardProbPolitician:    0.30,
		NewsCardSize:              3,

		OrganicCards: 14,

		PlaceRadiusKm:    10,
		PlaceRadiusMaxKm: 80,
		MinPlaces:        9,
		MaxPlaceOrganic:  5,
		ProximityHalfKm:  2.5,
		OffRegionPenalty: 0.45,
		IPGeoErrorKm:     25,

		WebRelWeight:    0.55,
		AuthWeight:      1.15,
		RegionBoost:     0.32,
		PlaceWeight:     1.15,
		PopWeight:       0.35,
		NewsRegionBoost: 0.25,

		HistoryWindow: 10 * time.Minute,
		HistoryBoost:  0.5,

		RateBurst:     30,
		RatePerMinute: 10,
	}
}

// validate normalizes obviously invalid values to their defaults.
func (c *Config) validate() {
	d := DefaultConfig()
	if c.Datacenters <= 0 {
		c.Datacenters = d.Datacenters
	}
	if c.Buckets <= 0 {
		c.Buckets = d.Buckets
	}
	if c.OrganicCards <= 0 {
		c.OrganicCards = d.OrganicCards
	}
	if c.MapsCardSize <= 0 {
		c.MapsCardSize = d.MapsCardSize
	}
	if c.NewsCardSize <= 0 {
		c.NewsCardSize = d.NewsCardSize
	}
	if c.PlaceRadiusKm <= 0 {
		c.PlaceRadiusKm = d.PlaceRadiusKm
	}
	if c.PlaceRadiusMaxKm < c.PlaceRadiusKm {
		c.PlaceRadiusMaxKm = d.PlaceRadiusMaxKm
	}
	if c.MinPlaces <= 0 {
		c.MinPlaces = d.MinPlaces
	}
	if c.HistoryWindow <= 0 {
		c.HistoryWindow = d.HistoryWindow
	}
	if c.RateBurst <= 0 {
		c.RateBurst = d.RateBurst
	}
	if c.RatePerMinute <= 0 {
		c.RatePerMinute = d.RatePerMinute
	}
}
