package engine

import (
	"testing"

	"geoserp/internal/geo"
	"geoserp/internal/metrics"
)

// TestDiagNoiseSources is a diagnostic aid kept in the suite at -v only: it
// prints the link diff between treatment and control for one term of each
// category, making noise regressions easy to inspect.
func TestDiagNoiseSources(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	e := newTestEngine()
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	for _, term := range []string{"Gay Marriage", "Barack Obama", "School", "Starbucks"} {
		for trial := 0; trial < 3; trial++ {
			r1, _ := e.Search(Request{Query: term, GPS: &pt, ClientIP: "10.9.0.1"})
			r2, _ := e.Search(Request{Query: term, GPS: &pt, ClientIP: "10.9.0.2"})
			l1, l2 := r1.Page.Links(), r2.Page.Links()
			cm := metrics.ComparePages(r1.Page, r2.Page)
			t.Logf("%s trial %d: edit=%d jaccard=%.3f", term, trial, cm.EditDistance, cm.Jaccard)
			if cm.EditDistance > 0 {
				n := len(l1)
				if len(l2) > n {
					n = len(l2)
				}
				for i := 0; i < n; i++ {
					a, b := "-", "-"
					if i < len(l1) {
						a = l1[i]
					}
					if i < len(l2) {
						b = l2[i]
					}
					marker := " "
					if a != b {
						marker = "*"
					}
					t.Logf("  %s %-60s | %s", marker, a, b)
				}
			}
		}
	}
}
