package geo

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Demographics is the per-location demographic profile. The paper correlates
// 25 features (population density, poverty, educational attainment, ethnic
// composition, English fluency, income, …) against pairwise search-result
// similarity and finds no explanatory correlation; we synthesize the same 25
// features deterministically so that analysis runs unchanged.
//
// The map always contains exactly the keys in FeatureNames.
type Demographics map[string]float64

// FeatureNames lists the 25 demographic features in canonical order. The
// demographics-correlation analysis iterates features in this order so its
// output table is stable.
var FeatureNames = []string{
	"population_density",
	"median_income",
	"poverty_rate",
	"bachelors_rate",
	"high_school_rate",
	"median_age",
	"pct_white",
	"pct_black",
	"pct_hispanic",
	"pct_asian",
	"english_fluency",
	"unemployment_rate",
	"home_ownership_rate",
	"median_home_value",
	"mean_commute_minutes",
	"household_size",
	"pct_under_18",
	"pct_over_65",
	"voter_turnout",
	"pct_democrat",
	"pct_republican",
	"internet_access_rate",
	"urbanization_index",
	"crime_index",
	"transit_access_index",
}

// featureRange bounds each synthesized feature to a plausible interval.
type featureRange struct{ lo, hi float64 }

var featureRanges = map[string]featureRange{
	"population_density":   {10, 12000}, // people per square mile
	"median_income":        {28000, 120000},
	"poverty_rate":         {0.04, 0.35},
	"bachelors_rate":       {0.12, 0.60},
	"high_school_rate":     {0.75, 0.97},
	"median_age":           {28, 48},
	"pct_white":            {0.20, 0.95},
	"pct_black":            {0.01, 0.60},
	"pct_hispanic":         {0.01, 0.40},
	"pct_asian":            {0.005, 0.25},
	"english_fluency":      {0.80, 0.995},
	"unemployment_rate":    {0.025, 0.14},
	"home_ownership_rate":  {0.35, 0.80},
	"median_home_value":    {70000, 650000},
	"mean_commute_minutes": {14, 40},
	"household_size":       {2.0, 3.4},
	"pct_under_18":         {0.15, 0.30},
	"pct_over_65":          {0.09, 0.25},
	"voter_turnout":        {0.38, 0.75},
	"pct_democrat":         {0.25, 0.70},
	"pct_republican":       {0.25, 0.70},
	"internet_access_rate": {0.60, 0.97},
	"urbanization_index":   {0, 1},
	"crime_index":          {0, 1},
	"transit_access_index": {0, 1},
}

// SynthesizeDemographics deterministically generates a 25-feature profile
// for the location with the given ID. Distinct IDs produce uncorrelated
// profiles by construction — which is exactly the property needed to
// reproduce the paper's negative result (no demographic feature explains
// result-similarity clustering).
func SynthesizeDemographics(id string) Demographics {
	d := make(Demographics, len(FeatureNames))
	for _, name := range FeatureNames {
		r := featureRanges[name]
		// Hash (id, feature) into a uniform value in [0, 1).
		h := fnv.New64a()
		h.Write([]byte(id))
		h.Write([]byte{0})
		h.Write([]byte(name))
		u := float64(h.Sum64()%1_000_000) / 1_000_000
		d[name] = r.lo + u*(r.hi-r.lo)
	}
	// Keep the partisan shares complementary-ish so the profile is
	// internally coherent (they need not sum to 1 — independents exist).
	if d["pct_democrat"]+d["pct_republican"] > 0.95 {
		scale := 0.95 / (d["pct_democrat"] + d["pct_republican"])
		d["pct_democrat"] *= scale
		d["pct_republican"] *= scale
	}
	return d
}

// Validate checks that d has exactly the canonical feature set and every
// value is finite and within its plausible range.
func (d Demographics) Validate() error {
	if len(d) != len(FeatureNames) {
		return fmt.Errorf("geo: demographics has %d features, want %d", len(d), len(FeatureNames))
	}
	for _, name := range FeatureNames {
		v, ok := d[name]
		if !ok {
			return fmt.Errorf("geo: demographics missing feature %q", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("geo: demographics feature %q is not finite", name)
		}
		r := featureRanges[name]
		if v < r.lo || v > r.hi {
			return fmt.Errorf("geo: demographics feature %q = %v outside [%v, %v]", name, v, r.lo, r.hi)
		}
	}
	return nil
}

// Delta returns |d[f] - o[f]| for every shared feature, keyed by feature
// name. The demographics analysis correlates these per-feature deltas with
// pairwise SERP distance.
func (d Demographics) Delta(o Demographics) map[string]float64 {
	out := make(map[string]float64, len(FeatureNames))
	for _, name := range FeatureNames {
		out[name] = math.Abs(d[name] - o[name])
	}
	return out
}

// Features returns the feature names present in d, sorted.
func (d Demographics) Features() []string {
	out := make([]string, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
