package geo

import (
	"encoding/json"
	"fmt"
)

// GeoJSON export of the vantage-point dataset, for visualizing the study
// geometry in any mapping tool.

// geoJSONFeature is a GeoJSON Feature with Point geometry.
type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONPoint   `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONPoint struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"` // lon, lat per the spec
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

// GeoJSON serializes the dataset as a GeoJSON FeatureCollection. Each
// location becomes a Point feature carrying its ID, name, and granularity;
// demographics are omitted (they are synthetic and would dwarf the file).
func (d *Dataset) GeoJSON() ([]byte, error) {
	coll := geoJSONCollection{Type: "FeatureCollection"}
	for _, l := range d.All() {
		coll.Features = append(coll.Features, geoJSONFeature{
			Type: "Feature",
			Geometry: geoJSONPoint{
				Type:        "Point",
				Coordinates: [2]float64{l.Point.Lon, l.Point.Lat},
			},
			Properties: map[string]any{
				"id":          l.ID,
				"name":        l.Name,
				"granularity": l.Granularity.Short(),
			},
		})
	}
	b, err := json.MarshalIndent(coll, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("geo: marshal geojson: %w", err)
	}
	return b, nil
}
