// Package geo provides the geographic substrate for the measurement study:
// great-circle geometry over WGS-84 coordinates, the three-granularity
// location taxonomy from the paper (county / state / national), the concrete
// 66-location dataset (22 US state centroids, 22 Ohio county centroids, and
// 15 Cuyahoga County voting-district points), and the synthetic demographic
// features used by the demographics-correlation analysis.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0088

// KmPerMile converts statute miles to kilometres.
const KmPerMile = 1.609344

// Point is a WGS-84 coordinate pair in decimal degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the point lies within the legal coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String renders the point as "lat,lon" with six decimal places — the format
// the SERP server accepts in its ll= query parameter, mirroring the
// "latitude/longitude pair as input" contract of the paper's PhantomJS
// script.
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometres.
func DistanceKm(a, b Point) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dla := la2 - la1
	dlo := lo2 - lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// DistanceMiles returns the great-circle distance between a and b in miles.
func DistanceMiles(a, b Point) float64 {
	return DistanceKm(a, b) / KmPerMile
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from true north, normalized to [0, 360).
func Bearing(a, b Point) float64 {
	la1 := deg2rad(a.Lat)
	la2 := deg2rad(b.Lat)
	dlo := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dlo) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dlo)
	brng := rad2deg(math.Atan2(y, x))
	return math.Mod(brng+360, 360)
}

// Destination returns the point reached by travelling distKm kilometres from
// p along the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, distKm float64) Point {
	ang := distKm / EarthRadiusKm
	brng := deg2rad(bearingDeg)
	la1 := deg2rad(p.Lat)
	lo1 := deg2rad(p.Lon)
	la2 := math.Asin(math.Sin(la1)*math.Cos(ang) + math.Cos(la1)*math.Sin(ang)*math.Cos(brng))
	lo2 := lo1 + math.Atan2(
		math.Sin(brng)*math.Sin(ang)*math.Cos(la1),
		math.Cos(ang)-math.Sin(la1)*math.Sin(la2),
	)
	lon := rad2deg(lo2)
	// Normalize longitude to [-180, 180].
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return Point{Lat: rad2deg(la2), Lon: lon}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	la1 := deg2rad(a.Lat)
	lo1 := deg2rad(a.Lon)
	la2 := deg2rad(b.Lat)
	dlo := deg2rad(b.Lon - a.Lon)
	bx := math.Cos(la2) * math.Cos(dlo)
	by := math.Cos(la2) * math.Sin(dlo)
	lat := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lon := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	return Point{Lat: rad2deg(lat), Lon: math.Mod(rad2deg(lon)+540, 360) - 180}
}

// Centroid returns the spherical centroid of the given points (the
// normalized mean of their unit vectors). It returns the zero Point for an
// empty input.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var x, y, z float64
	for _, p := range pts {
		la := deg2rad(p.Lat)
		lo := deg2rad(p.Lon)
		x += math.Cos(la) * math.Cos(lo)
		y += math.Cos(la) * math.Sin(lo)
		z += math.Sin(la)
	}
	n := float64(len(pts))
	x, y, z = x/n, y/n, z/n
	lon := math.Atan2(y, x)
	hyp := math.Sqrt(x*x + y*y)
	lat := math.Atan2(z, hyp)
	return Point{Lat: rad2deg(lat), Lon: rad2deg(lon)}
}

// BoundingBox is an axis-aligned lat/lon rectangle.
type BoundingBox struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Bounds returns the bounding box of pts. ok is false for an empty input.
func Bounds(pts []Point) (bb BoundingBox, ok bool) {
	if len(pts) == 0 {
		return BoundingBox{}, false
	}
	bb = BoundingBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLon: pts[0].Lon, MaxLon: pts[0].Lon,
	}
	for _, p := range pts[1:] {
		bb.MinLat = math.Min(bb.MinLat, p.Lat)
		bb.MaxLat = math.Max(bb.MaxLat, p.Lat)
		bb.MinLon = math.Min(bb.MinLon, p.Lon)
		bb.MaxLon = math.Max(bb.MaxLon, p.Lon)
	}
	return bb, true
}

// Contains reports whether p lies within the box (inclusive).
func (bb BoundingBox) Contains(p Point) bool {
	return p.Lat >= bb.MinLat && p.Lat <= bb.MaxLat &&
		p.Lon >= bb.MinLon && p.Lon <= bb.MaxLon
}

// ParsePoint parses the "lat,lon" wire format produced by Point.String.
func ParsePoint(s string) (Point, error) {
	var p Point
	if _, err := fmt.Sscanf(s, "%f,%f", &p.Lat, &p.Lon); err != nil {
		return Point{}, fmt.Errorf("geo: parse point %q: %w", s, err)
	}
	if !p.Valid() {
		return Point{}, fmt.Errorf("geo: point %q out of range", s)
	}
	return p, nil
}
