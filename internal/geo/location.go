package geo

import (
	"fmt"
	"sort"
)

// Granularity is the spatial scale of a vantage-point set, following the
// paper's three-level design: voting districts within Cuyahoga County
// (~1 mile apart), county centroids within Ohio (~100 miles apart), and
// state centroids across the US.
type Granularity int

const (
	// County is the finest scale: voting districts inside Cuyahoga County.
	County Granularity = iota
	// State is the middle scale: county centroids inside Ohio.
	State
	// National is the coarsest scale: state centroids across the US.
	National
)

// Granularities lists all granularities in fine-to-coarse order, matching
// the x-axis order of the paper's Figures 2 and 5.
var Granularities = []Granularity{County, State, National}

// String returns the paper's label for the granularity.
func (g Granularity) String() string {
	switch g {
	case County:
		return "County (Cuyahoga)"
	case State:
		return "State (Ohio)"
	case National:
		return "National (USA)"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Short returns a compact machine-friendly label.
func (g Granularity) Short() string {
	switch g {
	case County:
		return "county"
	case State:
		return "state"
	case National:
		return "national"
	default:
		return fmt.Sprintf("g%d", int(g))
	}
}

// ParseGranularity converts a Short label back to a Granularity.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "county":
		return County, nil
	case "state":
		return State, nil
	case "national":
		return National, nil
	}
	return 0, fmt.Errorf("geo: unknown granularity %q", s)
}

// Location is a vantage point in the study: a named place with a coordinate,
// a granularity, and a synthetic demographic profile.
type Location struct {
	// ID is a stable slug unique across the whole dataset,
	// e.g. "state/colorado" or "district/cuyahoga-07".
	ID string `json:"id"`
	// Name is the human-readable place name.
	Name string `json:"name"`
	// Granularity is the vantage-point set this location belongs to.
	Granularity Granularity `json:"granularity"`
	// Point is the query coordinate presented to the search engine.
	Point Point `json:"point"`
	// Demographics holds the synthetic 25-feature profile.
	Demographics Demographics `json:"demographics"`
}

// Dataset is the full set of study locations, indexed by granularity.
type Dataset struct {
	byGranularity map[Granularity][]Location
	byID          map[string]Location
}

// NewDataset builds a Dataset from locations, validating uniqueness of IDs
// and coordinate sanity.
func NewDataset(locs []Location) (*Dataset, error) {
	d := &Dataset{
		byGranularity: make(map[Granularity][]Location),
		byID:          make(map[string]Location, len(locs)),
	}
	for _, l := range locs {
		if l.ID == "" {
			return nil, fmt.Errorf("geo: location %q has empty ID", l.Name)
		}
		if _, dup := d.byID[l.ID]; dup {
			return nil, fmt.Errorf("geo: duplicate location ID %q", l.ID)
		}
		if !l.Point.Valid() {
			return nil, fmt.Errorf("geo: location %q has invalid point %v", l.ID, l.Point)
		}
		d.byID[l.ID] = l
		d.byGranularity[l.Granularity] = append(d.byGranularity[l.Granularity], l)
	}
	for g := range d.byGranularity {
		sort.Slice(d.byGranularity[g], func(i, j int) bool {
			return d.byGranularity[g][i].ID < d.byGranularity[g][j].ID
		})
	}
	return d, nil
}

// At returns the locations at granularity g, sorted by ID. The returned
// slice must not be mutated.
func (d *Dataset) At(g Granularity) []Location {
	return d.byGranularity[g]
}

// ByID looks a location up by its slug.
func (d *Dataset) ByID(id string) (Location, bool) {
	l, ok := d.byID[id]
	return l, ok
}

// All returns every location across all granularities, sorted by ID.
func (d *Dataset) All() []Location {
	out := make([]Location, 0, len(d.byID))
	for _, g := range Granularities {
		out = append(out, d.byGranularity[g]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the total number of locations.
func (d *Dataset) Len() int { return len(d.byID) }

// Nearest returns the location in locs closest to pt by great-circle
// distance. ok is false for an empty slice. The engine uses this for
// coarse reverse geocoding (e.g. which state's regional news outlets are
// relevant to a query coordinate).
func Nearest(locs []Location, pt Point) (Location, bool) {
	if len(locs) == 0 {
		return Location{}, false
	}
	best := locs[0]
	bestD := DistanceKm(best.Point, pt)
	for _, l := range locs[1:] {
		if d := DistanceKm(l.Point, pt); d < bestD {
			best, bestD = l, d
		}
	}
	return best, true
}

// MeanPairwiseDistanceKm returns the average great-circle distance over all
// unordered pairs of locations at granularity g. The paper reports ~1 mile
// for the voting districts and ~100 miles for the Ohio counties; this is the
// check used in tests and in DESIGN.md's shape targets.
func (d *Dataset) MeanPairwiseDistanceKm(g Granularity) float64 {
	locs := d.byGranularity[g]
	if len(locs) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := range locs {
		for j := i + 1; j < len(locs); j++ {
			sum += DistanceKm(locs[i].Point, locs[j].Point)
			n++
		}
	}
	return sum / float64(n)
}
