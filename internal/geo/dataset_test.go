package geo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestStudyDatasetShape(t *testing.T) {
	d := StudyDataset()
	// The paper's abstract reports 59 vantage points:
	// 22 national + 22 state + 15 county.
	if got := d.Len(); got != 59 {
		t.Fatalf("dataset has %d locations, want 59", got)
	}
	if got := len(d.At(National)); got != 22 {
		t.Fatalf("national locations = %d, want 22", got)
	}
	if got := len(d.At(State)); got != 22 {
		t.Fatalf("state locations = %d, want 22", got)
	}
	if got := len(d.At(County)); got != 15 {
		t.Fatalf("county locations = %d, want 15", got)
	}
}

func TestStudyDatasetSpacingMatchesPaper(t *testing.T) {
	d := StudyDataset()
	// Ohio counties: "on average, these counties [are] 100 miles apart".
	stateMiles := d.MeanPairwiseDistanceKm(State) / KmPerMile
	if stateMiles < 50 || stateMiles > 200 {
		t.Fatalf("mean state-level spacing = %.1f miles, want ~100", stateMiles)
	}
	// Voting districts: "on average, these voting districts are 1 mile apart".
	countyMiles := d.MeanPairwiseDistanceKm(County) / KmPerMile
	if countyMiles < 0.3 || countyMiles > 3 {
		t.Fatalf("mean county-level spacing = %.2f miles, want ~1", countyMiles)
	}
	// National spacing must dominate state spacing which dominates county.
	natMiles := d.MeanPairwiseDistanceKm(National) / KmPerMile
	if !(natMiles > stateMiles && stateMiles > countyMiles) {
		t.Fatalf("spacing not monotone: national=%.1f state=%.1f county=%.2f",
			natMiles, stateMiles, countyMiles)
	}
}

func TestStudyDatasetIDsAndPoints(t *testing.T) {
	d := StudyDataset()
	for _, l := range d.All() {
		if !l.Point.Valid() {
			t.Fatalf("%s has invalid point %v", l.ID, l.Point)
		}
		if err := l.Demographics.Validate(); err != nil {
			t.Fatalf("%s demographics: %v", l.ID, err)
		}
		wantPrefix := map[Granularity]string{
			National: "state/", State: "county/", County: "district/",
		}[l.Granularity]
		if !strings.HasPrefix(l.ID, wantPrefix) {
			t.Fatalf("%s has granularity %v but prefix mismatch", l.ID, l.Granularity)
		}
	}
	// Ohio must be a national location; Cuyahoga a state location.
	if _, ok := d.ByID("state/ohio"); !ok {
		t.Fatal("missing state/ohio")
	}
	if _, ok := d.ByID("county/cuyahoga"); !ok {
		t.Fatal("missing county/cuyahoga")
	}
}

func TestCuyahogaDistrictsInsideCounty(t *testing.T) {
	d := StudyDataset()
	cuy, _ := d.ByID("county/cuyahoga")
	for _, l := range d.At(County) {
		if miles := DistanceMiles(l.Point, cuy.Point); miles > 30 {
			t.Fatalf("%s is %.1f miles from the Cuyahoga centroid", l.ID, miles)
		}
	}
}

func TestOhioCountiesNearOhio(t *testing.T) {
	d := StudyDataset()
	ohio, _ := d.ByID("state/ohio")
	for _, l := range d.At(State) {
		if miles := DistanceMiles(l.Point, ohio.Point); miles > 200 {
			t.Fatalf("%s is %.1f miles from the Ohio centroid", l.ID, miles)
		}
	}
}

func TestNewDatasetRejectsDuplicates(t *testing.T) {
	locs := []Location{
		{ID: "x", Name: "X", Point: Point{1, 1}},
		{ID: "x", Name: "X2", Point: Point{2, 2}},
	}
	if _, err := NewDataset(locs); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestNewDatasetRejectsInvalid(t *testing.T) {
	if _, err := NewDataset([]Location{{ID: "", Name: "anon", Point: Point{1, 1}}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := NewDataset([]Location{{ID: "bad", Name: "Bad", Point: Point{999, 0}}}); err == nil {
		t.Fatal("invalid point accepted")
	}
}

func TestDatasetLookupsAndOrdering(t *testing.T) {
	d := StudyDataset()
	if _, ok := d.ByID("nope/nope"); ok {
		t.Fatal("ByID returned ok for missing location")
	}
	all := d.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
	at := d.At(State)
	for i := 1; i < len(at); i++ {
		if at[i-1].ID >= at[i].ID {
			t.Fatalf("At(State) not sorted: %s >= %s", at[i-1].ID, at[i].ID)
		}
	}
}

func TestGranularityStrings(t *testing.T) {
	cases := map[Granularity][2]string{
		County:   {"County (Cuyahoga)", "county"},
		State:    {"State (Ohio)", "state"},
		National: {"National (USA)", "national"},
	}
	for g, want := range cases {
		if g.String() != want[0] {
			t.Fatalf("String(%d) = %q, want %q", g, g.String(), want[0])
		}
		if g.Short() != want[1] {
			t.Fatalf("Short(%d) = %q, want %q", g, g.Short(), want[1])
		}
		back, err := ParseGranularity(g.Short())
		if err != nil || back != g {
			t.Fatalf("ParseGranularity(%q) = %v, %v", g.Short(), back, err)
		}
	}
	if Granularity(99).String() == "" || Granularity(99).Short() == "" {
		t.Fatal("unknown granularity has empty labels")
	}
	if _, err := ParseGranularity("galaxy"); err == nil {
		t.Fatal("ParseGranularity accepted junk")
	}
}

func TestSynthesizeDemographicsDeterministic(t *testing.T) {
	a := SynthesizeDemographics("district/cuyahoga-01")
	b := SynthesizeDemographics("district/cuyahoga-01")
	for _, f := range FeatureNames {
		if a[f] != b[f] {
			t.Fatalf("demographics not deterministic for %q", f)
		}
	}
	c := SynthesizeDemographics("district/cuyahoga-02")
	same := 0
	for _, f := range FeatureNames {
		if a[f] == c[f] {
			same++
		}
	}
	if same == len(FeatureNames) {
		t.Fatal("distinct IDs produced identical demographics")
	}
}

func TestDemographicsValidateCatchesCorruption(t *testing.T) {
	d := SynthesizeDemographics("x")
	if err := d.Validate(); err != nil {
		t.Fatalf("fresh demographics invalid: %v", err)
	}
	d["median_income"] = -1
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	delete(d, "median_income")
	if err := d.Validate(); err == nil {
		t.Fatal("missing feature accepted")
	}
}

func TestDemographicsDelta(t *testing.T) {
	a := SynthesizeDemographics("a")
	b := SynthesizeDemographics("b")
	delta := a.Delta(b)
	if len(delta) != len(FeatureNames) {
		t.Fatalf("delta has %d features, want %d", len(delta), len(FeatureNames))
	}
	for f, v := range delta {
		if v < 0 {
			t.Fatalf("delta[%q] = %v < 0", f, v)
		}
	}
	self := a.Delta(a)
	for f, v := range self {
		if v != 0 {
			t.Fatalf("self-delta[%q] = %v, want 0", f, v)
		}
	}
}

func TestDemographicsFeatures(t *testing.T) {
	d := SynthesizeDemographics("x")
	fs := d.Features()
	if len(fs) != len(FeatureNames) {
		t.Fatalf("Features() has %d entries, want %d", len(fs), len(FeatureNames))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1] >= fs[i] {
			t.Fatal("Features() not sorted")
		}
	}
}

func TestMeanPairwiseDistanceDegenerate(t *testing.T) {
	d, err := NewDataset([]Location{{ID: "solo", Name: "Solo", Granularity: County, Point: Point{1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MeanPairwiseDistanceKm(County); got != 0 {
		t.Fatalf("single-location mean distance = %v, want 0", got)
	}
}

func TestGeoJSONExport(t *testing.T) {
	b, err := StudyDataset().GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var coll struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string     `json:"type"`
				Coordinates [2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(b, &coll); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if coll.Type != "FeatureCollection" || len(coll.Features) != 59 {
		t.Fatalf("collection = %s with %d features", coll.Type, len(coll.Features))
	}
	f := coll.Features[0]
	if f.Geometry.Type != "Point" {
		t.Fatalf("geometry = %s", f.Geometry.Type)
	}
	// GeoJSON is lon,lat — make sure we did not swap them: all study
	// longitudes are negative (western hemisphere).
	if f.Geometry.Coordinates[0] >= 0 || f.Geometry.Coordinates[1] <= 0 {
		t.Fatalf("coordinates look swapped: %v", f.Geometry.Coordinates)
	}
	if f.Properties["id"] == "" || f.Properties["granularity"] == "" {
		t.Fatalf("properties = %v", f.Properties)
	}
}
