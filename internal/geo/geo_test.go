package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, eps float64, name string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, eps)
	}
}

var (
	cleveland = Point{41.4993, -81.6944}
	columbus  = Point{39.9612, -82.9988}
	nyc       = Point{40.7128, -74.0060}
	la        = Point{34.0522, -118.2437}
)

func TestDistanceKnownPairs(t *testing.T) {
	// Cleveland–Columbus is about 142 km (great circle).
	approx(t, DistanceKm(cleveland, columbus), 204, 80, "CLE-CMH rough")
	// NYC–LA is about 3936 km.
	approx(t, DistanceKm(nyc, la), 3936, 40, "NYC-LA")
	// Same point: zero.
	approx(t, DistanceKm(nyc, nyc), 0, 1e-9, "identity")
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(a, b Point) bool {
		a = clampPoint(a)
		b = clampPoint(b)
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c Point) bool {
		a, b, c = clampPoint(a), clampPoint(b), clampPoint(c)
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampPoint(p Point) Point {
	lat := math.Mod(math.Abs(p.Lat), 90)
	lon := math.Mod(math.Abs(p.Lon), 180)
	if math.IsNaN(lat) {
		lat = 0
	}
	if math.IsNaN(lon) {
		lon = 0
	}
	return Point{Lat: lat, Lon: lon}
}

func TestDistanceMiles(t *testing.T) {
	km := DistanceKm(nyc, la)
	approx(t, DistanceMiles(nyc, la), km/KmPerMile, 1e-9, "miles conversion")
}

func TestBearing(t *testing.T) {
	// Due north.
	b := Bearing(Point{40, -80}, Point{41, -80})
	approx(t, b, 0, 0.01, "north bearing")
	// Due south.
	b = Bearing(Point{41, -80}, Point{40, -80})
	approx(t, b, 180, 0.01, "south bearing")
	// Eastward (roughly 90 at the equator).
	b = Bearing(Point{0, 0}, Point{0, 1})
	approx(t, b, 90, 0.01, "east bearing")
	if b < 0 || b >= 360 {
		t.Fatalf("bearing %v outside [0,360)", b)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(latSeed, lonSeed, brngSeed, distSeed float64) bool {
		if anyBad(latSeed, lonSeed, brngSeed, distSeed) {
			return true
		}
		start := Point{
			Lat: math.Mod(math.Abs(latSeed), 60), // stay away from poles
			Lon: math.Mod(math.Abs(lonSeed), 170),
		}
		brng := math.Mod(math.Abs(brngSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 2000) // up to 2000 km
		end := Destination(start, brng, dist)
		if !end.Valid() {
			return false
		}
		// Travelling distance dist must land dist away (great circle).
		return math.Abs(DistanceKm(start, end)-dist) < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func TestDestinationKnown(t *testing.T) {
	// 111.195 km due north is almost exactly 1 degree of latitude.
	p := Destination(Point{40, -80}, 0, 111.195)
	approx(t, p.Lat, 41, 0.01, "north dest lat")
	approx(t, p.Lon, -80, 0.01, "north dest lon")
}

func TestMidpoint(t *testing.T) {
	mid := Midpoint(Point{0, 0}, Point{0, 10})
	approx(t, mid.Lat, 0, 1e-9, "mid lat")
	approx(t, mid.Lon, 5, 1e-9, "mid lon")
	// Midpoint is equidistant.
	a, b := nyc, la
	m := Midpoint(a, b)
	approx(t, DistanceKm(a, m), DistanceKm(b, m), 0.5, "mid equidistant")
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Fatalf("Centroid(nil) = %v, want zero", c)
	}
	pts := []Point{{10, 20}, {10, 20}}
	c := Centroid(pts)
	approx(t, c.Lat, 10, 1e-9, "degenerate centroid lat")
	approx(t, c.Lon, 20, 1e-9, "degenerate centroid lon")
	// Symmetric points around equator.
	c = Centroid([]Point{{10, 0}, {-10, 0}})
	approx(t, c.Lat, 0, 1e-9, "symmetric centroid lat")
}

func TestBounds(t *testing.T) {
	if _, ok := Bounds(nil); ok {
		t.Fatal("Bounds(nil) ok")
	}
	bb, ok := Bounds([]Point{{1, 2}, {-3, 7}, {5, -4}})
	if !ok {
		t.Fatal("Bounds not ok")
	}
	if bb.MinLat != -3 || bb.MaxLat != 5 || bb.MinLon != -4 || bb.MaxLon != 7 {
		t.Fatalf("Bounds = %+v", bb)
	}
	if !bb.Contains(Point{0, 0}) || bb.Contains(Point{10, 0}) {
		t.Fatal("Contains incorrect")
	}
}

func TestPointStringParseRoundTrip(t *testing.T) {
	p := Point{41.499321, -81.694412}
	got, err := ParsePoint(p.String())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got.Lat, p.Lat, 1e-6, "round-trip lat")
	approx(t, got.Lon, p.Lon, 1e-6, "round-trip lon")
}

func TestParsePointErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "1.0", "91.0,0.0", "0.0,181.0"} {
		if _, err := ParsePoint(s); err == nil {
			t.Fatalf("ParsePoint(%q) succeeded, want error", s)
		}
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{90.1, 0}, false},
		{Point{0, -180.1}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Fatalf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
