package geo

import (
	"fmt"
	"strings"
)

// This file contains the concrete vantage-point dataset used by the study,
// mirroring §2.1 of the paper:
//
//   - National: centroids of 22 US states (Ohio plus 21 others).
//   - State:    centroids of 22 Ohio counties (including Cuyahoga);
//               the paper notes these average roughly 100 miles apart.
//   - County:   15 voting-district points inside Cuyahoga County,
//               roughly 1 mile apart on average.
//
// State and county centroids are real (approximate) coordinates. The voting
// districts are synthetic points laid out across the urban core of Cuyahoga
// County, since the precise district coordinates used in the paper are not
// published; their inter-point spacing matches the paper's description.

// namedPoint is a compact literal for the tables below.
type namedPoint struct {
	name string
	lat  float64
	lon  float64
}

// stateCentroids are the 22 US states of the national-level treatment.
var stateCentroids = []namedPoint{
	{"Alabama", 32.806671, -86.791130},
	{"Arizona", 34.168219, -111.930907},
	{"California", 37.271875, -119.270415},
	{"Colorado", 38.997934, -105.550567},
	{"Florida", 28.932040, -81.928960},
	{"Georgia", 32.678125, -83.222976},
	{"Illinois", 40.041822, -89.196101},
	{"Kansas", 38.498779, -98.320078},
	{"Kentucky", 37.526671, -85.290272},
	{"Massachusetts", 42.271555, -71.747659},
	{"Michigan", 44.343476, -85.411164},
	{"Minnesota", 46.280092, -94.305510},
	{"Missouri", 38.456085, -92.288368},
	{"New York", 42.912764, -75.595104},
	{"North Carolina", 35.542161, -79.385304},
	{"Ohio", 40.358615, -82.706838},
	{"Oregon", 43.933445, -120.558229},
	{"Pennsylvania", 40.858734, -77.799934},
	{"Texas", 31.481160, -99.325623},
	{"Virginia", 37.521652, -78.853461},
	{"Washington", 47.411639, -120.556366},
	{"Wisconsin", 44.624679, -89.994114},
}

// ohioCountyCentroids are the 22 Ohio counties of the state-level treatment.
var ohioCountyCentroids = []namedPoint{
	{"Athens", 39.333759, -82.045138},
	{"Butler", 39.438496, -84.575446},
	{"Clermont", 39.047703, -84.151878},
	{"Cuyahoga", 41.432038, -81.671565},
	{"Delaware", 40.278553, -83.004935},
	{"Fairfield", 39.751500, -82.630478},
	{"Franklin", 39.969447, -83.011389},
	{"Greene", 39.691494, -83.889566},
	{"Hamilton", 39.195661, -84.543997},
	{"Lake", 41.713560, -81.245454},
	{"Licking", 40.091788, -82.483183},
	{"Lorain", 41.295848, -82.151262},
	{"Lucas", 41.617455, -83.626102},
	{"Mahoning", 41.014605, -80.776279},
	{"Medina", 41.117666, -81.899652},
	{"Montgomery", 39.754082, -84.290306},
	{"Portage", 41.167798, -81.197243},
	{"Stark", 40.813959, -81.365500},
	{"Summit", 41.126102, -81.532970},
	{"Trumbull", 41.317224, -80.761284},
	{"Warren", 39.427543, -84.166764},
	{"Wood", 41.361738, -83.622922},
}

// cuyahogaDistricts are 15 synthetic voting-district points inside Cuyahoga
// County, laid out on a tight grid over the Cleveland urban core. At this
// latitude one mile is about 0.0145° of latitude and 0.0193° of longitude;
// the grid spacing is chosen so the average pairwise distance is on the
// order of one mile, matching the paper.
var cuyahogaDistricts = []namedPoint{
	{"District 01", 41.4898, -81.7050},
	{"District 02", 41.4898, -81.6935},
	{"District 03", 41.4898, -81.6820},
	{"District 04", 41.4898, -81.6705},
	{"District 05", 41.4985, -81.7050},
	{"District 06", 41.4985, -81.6935},
	{"District 07", 41.4985, -81.6820},
	{"District 08", 41.4985, -81.6705},
	{"District 09", 41.5072, -81.7050},
	{"District 10", 41.5072, -81.6935},
	{"District 11", 41.5072, -81.6820},
	{"District 12", 41.5072, -81.6705},
	{"District 13", 41.5159, -81.7050},
	{"District 14", 41.5159, -81.6935},
	{"District 15", 41.5159, -81.6820},
}

// slugify lowercases a name and replaces spaces with dashes, producing the
// ID component for a location.
func slugify(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}

// StudyLocations returns the full 59-vantage-point dataset of the paper
// (22 national + 22 state + 15 county), each with a deterministic synthetic
// demographic profile.
func StudyLocations() []Location {
	out := make([]Location, 0, len(stateCentroids)+len(ohioCountyCentroids)+len(cuyahogaDistricts))
	add := func(prefix string, g Granularity, pts []namedPoint) {
		for _, np := range pts {
			id := fmt.Sprintf("%s/%s", prefix, slugify(np.name))
			out = append(out, Location{
				ID:           id,
				Name:         np.name,
				Granularity:  g,
				Point:        Point{Lat: np.lat, Lon: np.lon},
				Demographics: SynthesizeDemographics(id),
			})
		}
	}
	add("state", National, stateCentroids)
	add("county", State, ohioCountyCentroids)
	add("district", County, cuyahogaDistricts)
	return out
}

// StudyDataset returns StudyLocations wrapped in a validated Dataset.
// It panics on error because the embedded tables are compile-time constants;
// a failure indicates a bug in the tables themselves.
func StudyDataset() *Dataset {
	d, err := NewDataset(StudyLocations())
	if err != nil {
		panic("geo: invalid embedded study dataset: " + err.Error())
	}
	return d
}
