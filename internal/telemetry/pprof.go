package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux exposing the standard net/http/pprof endpoints
// under /debug/pprof/. Serving it is opt-in (serpd's -pprof-addr flag)
// and on a separate listener, so profiling never shares a port with
// production traffic.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
