package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func sampleWideEvent() *WideEvent {
	e := &WideEvent{
		TraceID: "0felix0000000001",
		Status:  200,
		Dur:     1874 * time.Microsecond,
		Partial: "web",
		Err:     "",
	}
	e.Stage("parse", 12*time.Microsecond)
	e.Stage("noise", 3*time.Microsecond)
	e.Stage("retrieve", 901*time.Microsecond)
	e.Shard(0, 0, "ok", false, 901*time.Microsecond)
	e.Shard(1, 0, "shed", false, 13*time.Microsecond)
	e.Shard(2, 0, "ok", false, 40*time.Microsecond)
	e.Shard(2, 1, "canceled", true, 0)
	e.Hedge(false)
	return e
}

func TestWideEventAppendText(t *testing.T) {
	got := string(sampleWideEvent().AppendText(nil))
	want := "trace=0felix0000000001 status=200 dur_us=1874 partial=web " +
		"stages=parse:12,noise:3,retrieve:901 " +
		"shards=0.0:ok:901,1.0:shed:13,2.0:ok:40,2.1:canceled:0:h hedges=0/1"
	if got != want {
		t.Fatalf("AppendText:\n got %q\nwant %q", got, want)
	}

	// Optional fields stay out of minimal records; err appears when set.
	min := &WideEvent{TraceID: "t", Status: 503, Err: "deadline"}
	if got := string(min.AppendText(nil)); got != "trace=t status=503 dur_us=0 err=deadline" {
		t.Fatalf("minimal record = %q", got)
	}

	// The stage/shard fragments are exposed separately for structured sinks.
	e := sampleWideEvent()
	if got := string(e.AppendStages(nil)); got != "parse:12,noise:3,retrieve:901" {
		t.Fatalf("AppendStages = %q", got)
	}
	if got := string(e.AppendShards(nil)); !strings.HasPrefix(got, "0.0:ok:901,") {
		t.Fatalf("AppendShards = %q", got)
	}
	if len(e.Stages()) != 3 || len(e.Shards()) != 4 {
		t.Fatalf("views: %d stages %d shards", len(e.Stages()), len(e.Shards()))
	}
}

func TestWideEventCapsAndReset(t *testing.T) {
	e := &WideEvent{}
	for i := 0; i < MaxWideStages+2; i++ {
		e.Stage("s", time.Microsecond)
	}
	for i := 0; i < MaxWideShards+3; i++ {
		e.Shard(i, 0, "ok", false, 0)
	}
	if len(e.Stages()) != MaxWideStages || len(e.Shards()) != MaxWideShards {
		t.Fatalf("caps not enforced: %d/%d", len(e.Stages()), len(e.Shards()))
	}
	if !strings.Contains(string(e.AppendText(nil)), " dropped=5") {
		t.Fatalf("dropped count missing: %q", e.AppendText(nil))
	}
	e.Reset()
	if len(e.Stages()) != 0 || len(e.Shards()) != 0 || e.TraceID != "" {
		t.Fatal("Reset left state behind")
	}
}

func TestWideEventNilSafe(t *testing.T) {
	var e *WideEvent
	e.Reset()
	e.Stage("parse", time.Second)
	e.Shard(0, 0, "ok", false, 0)
	e.Hedge(true)
	if e.Stages() != nil || e.Shards() != nil {
		t.Fatal("nil event returned views")
	}
	if got := e.AppendText([]byte("x")); string(got) != "x" {
		t.Fatalf("nil AppendText = %q", got)
	}
}

func TestWideEventContext(t *testing.T) {
	if WideEventFrom(context.Background()) != nil {
		t.Fatal("empty context carried a wide event")
	}
	e := &WideEvent{TraceID: "t"}
	ctx := WithWideEvent(context.Background(), e)
	if WideEventFrom(ctx) != e {
		t.Fatal("round trip failed")
	}
}

// TestWideEventAppendZeroAlloc pins the formatting hot path: appending the
// canonical record into a reused buffer must not allocate.
func TestWideEventAppendZeroAlloc(t *testing.T) {
	e := sampleWideEvent()
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		buf = e.AppendText(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendText allocates %v per run, want 0", allocs)
	}
}

// BenchmarkWideEventAppend is the committed-baseline benchmark for the
// wide-event formatter (BENCH_core.json gates allocs/op and B/op at 0).
func BenchmarkWideEventAppend(b *testing.B) {
	e := sampleWideEvent()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.AppendText(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("empty record")
	}
}
