package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"geoserp/internal/simclock"
)

var testEpoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func TestSpanParentChildStructure(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(16, clk)

	root := rec.StartRoot("trace01", "crawler.sweep")
	root.SetAttr("term", "gay marriage")
	clk.Advance(time.Millisecond)
	child := root.StartChild("browser.fetch")
	clk.Advance(2 * time.Millisecond)
	grand := child.StartChild("engine.rerank")
	clk.Advance(time.Millisecond)
	grand.End()
	child.End()
	clk.Advance(time.Millisecond)
	root.End()

	got := rec.Snapshot()
	if len(got) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(got))
	}
	byName := map[string]SpanRecord{}
	for _, s := range got {
		byName[s.Name] = s
	}
	r, c, g := byName["crawler.sweep"], byName["browser.fetch"], byName["engine.rerank"]
	if r.ParentID != "" {
		t.Fatalf("root has parent %q", r.ParentID)
	}
	if c.ParentID != r.SpanID || g.ParentID != c.SpanID {
		t.Fatalf("parent chain broken: root=%s child.parent=%s grand.parent=%s child=%s",
			r.SpanID, c.ParentID, g.ParentID, c.SpanID)
	}
	if r.TraceID != "trace01" || c.TraceID != "trace01" || g.TraceID != "trace01" {
		t.Fatal("children did not inherit the trace ID")
	}
	if r.Dur() != 5*time.Millisecond || c.Dur() != 3*time.Millisecond || g.Dur() != time.Millisecond {
		t.Fatalf("durations: root=%v child=%v grand=%v", r.Dur(), c.Dur(), g.Dur())
	}
	if r.Attr("term") != "gay marriage" {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
}

func TestSpanRingIsBounded(t *testing.T) {
	rec := NewSpanRecorder(4, simclock.NewManual(testEpoch))
	for i := 0; i < 10; i++ {
		rec.StartRootSeq("t", "op", i).End()
	}
	if rec.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", rec.Len())
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d, want 10", rec.Total())
	}
	// The survivors must be the four most recent, oldest first.
	got := rec.Snapshot()
	want := []string{
		formatSpanID(mintSpanID("t", "op", 0, 6)),
		formatSpanID(mintSpanID("t", "op", 0, 7)),
		formatSpanID(mintSpanID("t", "op", 0, 8)),
		formatSpanID(mintSpanID("t", "op", 0, 9)),
	}
	for i, s := range got {
		if s.SpanID != want[i] {
			t.Fatalf("slot %d = %s, want %s", i, s.SpanID, want[i])
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var rec *SpanRecorder
	s := rec.StartRoot("t", "op")
	if s != nil {
		t.Fatal("nil recorder returned a live span")
	}
	// All of these must be no-ops, not panics.
	s.SetAttr("k", "v")
	c := s.StartChild("child")
	c.SetAttr("k", "v")
	c.End()
	s.End()
	if s.TraceID() != "" {
		t.Fatal("nil span has a trace ID")
	}
	if rec.Snapshot() != nil || rec.Len() != 0 || rec.Total() != 0 || rec.Capacity() != 0 {
		t.Fatal("nil recorder is not empty")
	}

	// A context with neither span nor recorder yields a no-op span.
	ctx, sp := StartSpan(context.Background(), "op")
	if sp != nil {
		t.Fatal("bare context produced a live span")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("bare context carries a span")
	}
}

func TestSpanIDsDeterministic(t *testing.T) {
	mk := func() (string, string) {
		rec := NewSpanRecorder(8, simclock.NewManual(testEpoch))
		root := rec.StartRoot("tr", "a")
		child := root.StartChild("b")
		child.End()
		root.End()
		ss := rec.Snapshot()
		return ss[0].SpanID, ss[1].SpanID
	}
	c1, r1 := mk()
	c2, r2 := mk()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("IDs differ across identical runs: %s/%s vs %s/%s", c1, r1, c2, r2)
	}
	// Distinct seq (retry attempts) mint distinct root IDs.
	rec := NewSpanRecorder(8, simclock.NewManual(testEpoch))
	a := rec.StartRootSeq("tr", "browser.fetch", 1)
	b := rec.StartRootSeq("tr", "browser.fetch", 2)
	if a.spanID == b.spanID {
		t.Fatal("different attempts minted the same span ID")
	}
	a.End()
	b.End()
}

func TestSpanAttrOverflowCounted(t *testing.T) {
	rec := NewSpanRecorder(4, simclock.NewManual(testEpoch))
	s := rec.StartRoot("t", "op")
	for i := 0; i < MaxSpanAttrs+3; i++ {
		s.SetAttr("k"+itoa(i), "v")
	}
	s.End()
	got := rec.Snapshot()[0]
	if len(got.Attrs) != MaxSpanAttrs+1 {
		t.Fatalf("got %d attrs, want %d + dropped marker", len(got.Attrs), MaxSpanAttrs)
	}
	if got.Attr("attrs_dropped") != "3" {
		t.Fatalf("attrs_dropped = %q, want 3", got.Attr("attrs_dropped"))
	}
}

func TestStartSpanContextPlumbing(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(8, clk)
	ctx := WithTraceID(WithSpanRecorder(context.Background(), rec), "deadbeef00000001")

	if SpanRecorderFrom(ctx) != rec {
		t.Fatal("recorder not carried by context")
	}
	ctx, root := StartSpan(ctx, "serpd.request")
	if root == nil {
		t.Fatal("StartSpan with recorder returned nil")
	}
	if root.TraceID() != "deadbeef00000001" {
		t.Fatalf("root trace = %q", root.TraceID())
	}
	_, child := StartSpan(ctx, "engine.rerank")
	child.End()
	root.End()

	ss := rec.Snapshot()
	if len(ss) != 2 {
		t.Fatalf("recorded %d spans", len(ss))
	}
	if ss[0].Name != "engine.rerank" || ss[0].ParentID != ss[1].SpanID {
		t.Fatalf("child span not parented to ctx span: %+v / %+v", ss[0], ss[1])
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder(64, simclock.NewManual(testEpoch))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := rec.StartRootSeq("t"+itoa(worker), "op", j)
				s.SetAttr("j", itoa(j))
				s.StartChild("inner").End()
				s.End()
			}
		}(i)
	}
	wg.Wait()
	if rec.Total() != 8*200*2 {
		t.Fatalf("total = %d, want %d", rec.Total(), 8*200*2)
	}
	if rec.Len() != 64 {
		t.Fatalf("len = %d, want 64", rec.Len())
	}
}

func TestWriteChromeTraceValidAndDeterministic(t *testing.T) {
	build := func() string {
		clk := simclock.NewManual(testEpoch)
		rec := NewSpanRecorder(32, clk)
		for _, tr := range []string{"tracea", "traceb"} {
			root := rec.StartRoot(tr, "crawler.sweep")
			clk.Advance(time.Millisecond)
			c := root.StartChild("browser.fetch")
			c.SetAttr("attempt", "1")
			clk.Advance(3 * time.Millisecond)
			c.End()
			root.End()
		}
		var b strings.Builder
		if err := WriteChromeTrace(&b, rec.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("trace output not byte-identical:\n%s\n----\n%s", a, b)
	}

	// Valid JSON in the Chrome trace-event envelope.
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Name string         `json:"name"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts == nil || ev.Dur == nil {
				t.Fatalf("complete event missing ts/dur: %+v", ev)
			}
			if ev.Args["trace_id"] == nil || ev.Args["span_id"] == nil {
				t.Fatalf("complete event missing span identity: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// One process_name row plus one thread_name row per trace.
	if meta != 3 || complete != 4 {
		t.Fatalf("got %d metadata + %d complete events, want 3 + 4", meta, complete)
	}
	if !strings.Contains(a, `"process_name","args":{"name":"geoserp"}`) {
		t.Fatal("process_name metadata missing")
	}
	if !strings.Contains(a, `"attempt":"1"`) {
		t.Fatal("span attribute missing from args")
	}
}

func TestTracezHandler(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(32, clk)
	for i := 0; i < 3; i++ {
		root := rec.StartRoot("trace"+itoa(i), "serpd.request")
		clk.Advance(time.Millisecond)
		root.StartChild("engine.rerank").End()
		root.End()
	}
	h := TracezHandler(rec)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/tracez", nil))
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var doc struct {
		Capacity int    `json:"capacity"`
		Total    uint64 `json:"total_recorded"`
		Traces   []struct {
			TraceID string       `json:"trace_id"`
			Spans   []SpanRecord `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 32 || doc.Total != 6 || len(doc.Traces) != 3 {
		t.Fatalf("capacity=%d total=%d traces=%d", doc.Capacity, doc.Total, len(doc.Traces))
	}
	// Most recent trace first, root before child inside each trace.
	if doc.Traces[0].TraceID != "trace2" {
		t.Fatalf("first trace = %s, want trace2", doc.Traces[0].TraceID)
	}
	tr := doc.Traces[0]
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "serpd.request" ||
		tr.Spans[1].ParentID != tr.Spans[0].SpanID {
		t.Fatalf("trace structure wrong: %+v", tr.Spans)
	}

	// limit caps the trace count.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/tracez?limit=1", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(doc.Traces))
	}

	// HTML rendering.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/tracez?format=html", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("html content type = %q", ct)
	}
	body := w.Body.String()
	if !strings.Contains(body, "trace2") || !strings.Contains(body, "engine.rerank") {
		t.Fatalf("html body missing traces:\n%s", body)
	}

	// Bad limit rejected.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/tracez?limit=potato", nil))
	if w.Code != 400 {
		t.Fatalf("bad limit status = %d", w.Code)
	}
}

// TestSpanHotPathZeroAlloc pins the recorder's hot path — start, attrs,
// child, end — at zero allocations per span in steady state.
func TestSpanHotPathZeroAlloc(t *testing.T) {
	rec := NewSpanRecorder(256, simclock.NewManual(testEpoch))
	// Warm the pool and fill the ring so the measured loop reuses slots.
	for i := 0; i < 512; i++ {
		rec.StartRoot("warmup", "op").End()
	}
	if n := testing.AllocsPerRun(1000, func() {
		s := rec.StartRoot("deadbeef00000001", "serpd.request")
		s.SetAttr("status", "200")
		s.SetAttr("datacenter", "dc-east")
		c := s.StartChild("engine.rerank")
		c.End()
		s.End()
	}); n != 0 {
		t.Fatalf("span hot path allocates %v/op, want 0", n)
	}
}

// BenchmarkSpan is the acceptance benchmark: the recorder hot path must
// report 0 allocs/op under -benchmem.
func BenchmarkSpan(b *testing.B) {
	rec := NewSpanRecorder(4096, simclock.NewManual(testEpoch))
	for i := 0; i < 4096; i++ { // fill the ring: measure steady state
		rec.StartRoot("warmup", "op").End()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rec.StartRoot("deadbeef00000001", "serpd.request")
		s.SetAttr("status", "200")
		c := s.StartChild("engine.rerank")
		c.End()
		s.End()
	}
}

func BenchmarkSpanWithSnapshot(b *testing.B) {
	rec := NewSpanRecorder(1024, simclock.NewManual(testEpoch))
	for i := 0; i < 2048; i++ {
		rec.StartRootSeq("t", "op", i).End()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rec.Snapshot()
	}
}
