package telemetry

import "sort"

// Stitching joins the span rings of several processes into cross-process
// traces. The join needs no clock agreement or extra bookkeeping: every
// node keys its spans by the propagated X-Trace-Id, and servers mint their
// spans as remote children of the exact client span named by
// X-Parent-Span, so a router fan-out leg and the shard-side server span it
// caused already share (trace ID, parent link) — Stitch only has to merge,
// dedup, and order.

// NodeSpans is one node's contribution to a stitched trace set: the node's
// name (router, shard-0, …) and the spans exported from its ring.
type NodeSpans struct {
	Node  string       `json:"node"`
	Spans []SpanRecord `json:"spans"`
}

// StitchedSpan is a SpanRecord annotated with the node that recorded it.
type StitchedSpan struct {
	SpanRecord
	Node string `json:"node"`
}

// StitchedTrace is one cross-process trace: every node's spans for a trace
// ID, merged and deterministically ordered.
type StitchedTrace struct {
	TraceID string         `json:"trace_id"`
	Spans   []StitchedSpan `json:"spans"`
}

// Stitch merges per-node span exports into cross-process traces. Within a
// trace, spans sort by (start, depth, node, span ID) — parent before child
// on start-time ties, as virtual clocks make common — where depth follows
// parent links across node boundaries. Traces sort by (earliest span
// start, trace ID). Duplicate (node, span ID) pairs — possible when a
// caller double-exports a ring — keep the first occurrence. The ordering
// depends only on span content, never ring arrival order, so same-seed
// exports stitch byte-identically.
func Stitch(nodes []NodeSpans) []StitchedTrace {
	byTrace := make(map[string][]StitchedSpan)
	seen := make(map[string]bool)
	for _, n := range nodes {
		for _, s := range n.Spans {
			key := n.Node + "\x1f" + s.TraceID + "\x1f" + s.SpanID
			if seen[key] {
				continue
			}
			seen[key] = true
			byTrace[s.TraceID] = append(byTrace[s.TraceID], StitchedSpan{SpanRecord: s, Node: n.Node})
		}
	}
	out := make([]StitchedTrace, 0, len(byTrace))
	for id, ss := range byTrace {
		// Depth is computed over the merged span set, so a shard-side span
		// whose parent lives on the router still lands below it.
		flat := make([]SpanRecord, len(ss))
		for i, s := range ss {
			flat[i] = s.SpanRecord
		}
		depth := spanDepths(flat)
		sort.SliceStable(ss, func(a, b int) bool {
			x, y := ss[a], ss[b]
			if !x.Start.Equal(y.Start) {
				return x.Start.Before(y.Start)
			}
			if dx, dy := depth[x.SpanID], depth[y.SpanID]; dx != dy {
				return dx < dy
			}
			if x.Node != y.Node {
				return x.Node < y.Node
			}
			return x.SpanID < y.SpanID
		})
		out = append(out, StitchedTrace{TraceID: id, Spans: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Spans[0].Start.Equal(b.Spans[0].Start) {
			return a.Spans[0].Start.Before(b.Spans[0].Start)
		}
		return a.TraceID < b.TraceID
	})
	return out
}

// SpansOf returns the trace with the given ID (nil when absent).
func SpansOf(traces []StitchedTrace, traceID string) []StitchedSpan {
	for _, t := range traces {
		if t.TraceID == traceID {
			return t.Spans
		}
	}
	return nil
}
