package telemetry

import (
	"io"
	"log/slog"
)

// NewLogHandler builds the slog handler every cmd/ binary shares: logfmt
// text for terminals, JSON lines when format is "json" (the shape log
// shippers want). Unknown formats fall back to text.
func NewLogHandler(w io.Writer, format string, level slog.Leveler) slog.Handler {
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return slog.NewJSONHandler(w, opts)
	}
	return slog.NewTextHandler(w, opts)
}

// NewLogger wraps NewLogHandler in a *slog.Logger at Info level.
func NewLogger(w io.Writer, format string) *slog.Logger {
	return slog.New(NewLogHandler(w, format, slog.LevelInfo))
}
