package telemetry

import (
	"context"
	"net/http/httptest"
	"regexp"
	"testing"
)

func TestMintTraceIDDeterministic(t *testing.T) {
	a := MintTraceID(1, "phase", "term", "loc")
	b := MintTraceID(1, "phase", "term", "loc")
	if a != b {
		t.Fatalf("same key minted different IDs: %s vs %s", a, b)
	}
	if a == MintTraceID(1, "phase", "term", "other") {
		t.Fatal("different keys minted the same ID")
	}
	if a == MintTraceID(2, "phase", "term", "loc") {
		t.Fatal("different seeds minted the same ID")
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(a) {
		t.Fatalf("trace ID %q is not 16 hex digits", a)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context carries a trace ID")
	}
	ctx = WithTraceID(ctx, "abc123")
	if TraceID(ctx) != "abc123" {
		t.Fatalf("trace ID = %q", TraceID(ctx))
	}
}

func TestPprofMuxServes(t *testing.T) {
	w := httptest.NewRecorder()
	PprofMux().ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != 200 {
		t.Fatalf("pprof index status = %d", w.Code)
	}
	if w.Body.Len() == 0 {
		t.Fatal("pprof index empty")
	}
}
