package telemetry

import (
	"context"
	"fmt"
	"net/http/httptest"
	"regexp"
	"testing"
)

func TestMintTraceIDDeterministic(t *testing.T) {
	a := MintTraceID(1, "phase", "term", "loc")
	b := MintTraceID(1, "phase", "term", "loc")
	if a != b {
		t.Fatalf("same key minted different IDs: %s vs %s", a, b)
	}
	if a == MintTraceID(1, "phase", "term", "other") {
		t.Fatal("different keys minted the same ID")
	}
	if a == MintTraceID(2, "phase", "term", "loc") {
		t.Fatal("different seeds minted the same ID")
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(a) {
		t.Fatalf("trace ID %q is not 16 hex digits", a)
	}
}

// TestMintTraceIDCrossPhaseUnique pins the campaign-wide uniqueness
// property the crawler relies on: every (phase, granularity, day, term,
// location, role) tuple a campaign mints must get its own trace ID, or two
// different requests would share noise keys and span timelines.
func TestMintTraceIDCrossPhaseUnique(t *testing.T) {
	seen := make(map[string]string)
	for _, phase := range []string{"state", "city", "validation"} {
		for _, gran := range []string{"st", "ci"} {
			for day := 0; day < 3; day++ {
				for _, term := range []string{"gay marriage", "obamacare", "walmart"} {
					for _, loc := range []string{"US-TX", "US-MA", "US-OH"} {
						for _, role := range []string{"control", "treatment"} {
							key := phase + "/" + gran + "/" + fmt.Sprint(day) + "/" + term + "/" + loc + "/" + role
							id := MintTraceID(0, phase, gran, fmt.Sprint(day), term, loc, role)
							if prev, dup := seen[id]; dup {
								t.Fatalf("trace ID %s collides: %s and %s", id, prev, key)
							}
							seen[id] = key
							if id != MintTraceID(0, phase, gran, fmt.Sprint(day), term, loc, role) {
								t.Fatalf("re-mint of %s differs", key)
							}
						}
					}
				}
			}
		}
	}
	if len(seen) != 3*2*3*3*3*2 {
		t.Fatalf("minted %d IDs, want %d", len(seen), 3*2*3*3*3*2)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context carries a trace ID")
	}
	ctx = WithTraceID(ctx, "abc123")
	if TraceID(ctx) != "abc123" {
		t.Fatalf("trace ID = %q", TraceID(ctx))
	}
}

func TestPprofMuxServes(t *testing.T) {
	w := httptest.NewRecorder()
	PprofMux().ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != 200 {
		t.Fatalf("pprof index status = %d", w.Code)
	}
	if w.Body.Len() == 0 {
		t.Fatal("pprof index empty")
	}
}
