package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("requests_total", "ignored"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}

	v := reg.CounterVec("by_code_total", "By code.", "code")
	v.With("200").Add(3)
	v.With("429").Inc()
	if got := v.Values(); got["200"] != 3 || got["429"] != 1 {
		t.Fatalf("vec values = %v", got)
	}
	if v.Total() != 4 {
		t.Fatalf("vec total = %d", v.Total())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "Queue depth.")
	g.Set(3)
	g.Add(2.5)
	if g.Value() != 5.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Add(-5.5)
	if g.Value() != 0 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.5+5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_count 4`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("render missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("stage_seconds", "Per-stage latency.", "stage", []float64{0.01, 0.1})
	v.With("rerank").Observe(0.005)
	v.With("rerank").Observe(0.05)
	v.With("assemble").Observe(5)
	if again := reg.HistogramVec("stage_seconds", "", "stage", nil); again != v {
		t.Fatal("re-registration did not return the existing vec")
	}
	if v.With("rerank").Count() != 2 || v.With("assemble").Count() != 1 {
		t.Fatalf("counts: rerank=%d assemble=%d",
			v.With("rerank").Count(), v.With("assemble").Count())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="rerank",le="0.01"} 1`,
		`stage_seconds_bucket{stage="rerank",le="0.1"} 2`,
		`stage_seconds_bucket{stage="rerank",le="+Inf"} 2`,
		`stage_seconds_count{stage="rerank"} 2`,
		`stage_seconds_bucket{stage="assemble",le="+Inf"} 1`,
		`stage_seconds_sum{stage="assemble"} 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("render missing %q:\n%s", line, out)
		}
	}
	// Label values sorted for stable output.
	if strings.Index(out, `stage="assemble"`) > strings.Index(out, `stage="rerank"`) {
		t.Fatal("histogram vec label values not sorted")
	}
}

func TestHistogramVecLabelMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramVec("x_seconds", "", "stage", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch did not panic")
		}
	}()
	reg.HistogramVec("x_seconds", "", "phase", nil)
}

func TestWritePrometheusStableAndEscaped(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "Second.").Inc()
	reg.Counter("a_total", "First.").Inc()
	v := reg.CounterVec("l_total", "Labelled.", "who")
	v.With(`we"ird\value`).Inc()

	var one, two strings.Builder
	reg.WritePrometheus(&one)
	reg.WritePrometheus(&two)
	if one.String() != two.String() {
		t.Fatal("render is not stable")
	}
	out := one.String()
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatal("families not sorted by name")
	}
	if !strings.Contains(out, `l_total{who="we\"ird\\value"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "Hits.").Add(7)
	w := httptest.NewRecorder()
	reg.MetricsHandler().ServeHTTP(w, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "hits_total 7") {
		t.Fatalf("body = %q", w.Body.String())
	}
}

func TestConcurrentHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	v := reg.CounterVec("v_total", "", "k")
	h := reg.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("x").Inc()
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || v.With("x").Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d v=%d h=%d", c.Value(), v.With("x").Value(), h.Count())
	}
}

func TestCounterPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	v := reg.CounterVec("v_total", "", "k")
	v.With("200") // materialize the child outside the measured loop
	h := reg.Histogram("h", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { v.With("200").Inc() }); n != 0 {
		t.Fatalf("CounterVec.With(existing).Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}
