package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"geoserp/internal/simclock"
)

func recordN(rec *SpanRecorder, clk *simclock.Manual, n int) {
	for i := 0; i < n; i++ {
		s := rec.StartRootSeq("trace-spanz", "op", i)
		clk.Advance(time.Millisecond)
		s.End()
	}
}

func TestSnapshotRangeBasicAndWraparound(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(8, clk)
	recordN(rec, clk, 5)

	spans, start, total := rec.SnapshotRange(0, 0)
	if len(spans) != 5 || start != 0 || total != 5 {
		t.Fatalf("pre-wrap: got %d spans start=%d total=%d", len(spans), start, total)
	}
	if spans[0].SpanID != formatSpanID(mintSpanID("trace-spanz", "op", 0, 0)) {
		t.Fatalf("first span is not lifetime index 0")
	}

	// Wrap the ring: 15 more spans → total 20, ring holds indices 12..19.
	recordN(rec, clk, 15)
	spans, start, total = rec.SnapshotRange(0, 0)
	if total != 20 || start != 12 || len(spans) != 8 {
		t.Fatalf("post-wrap: got %d spans start=%d total=%d", len(spans), start, total)
	}
	// Oldest-first: the held window must match a full Snapshot.
	full := rec.Snapshot()
	for i := range full {
		if full[i].SpanID != spans[i].SpanID {
			t.Fatalf("SnapshotRange disagrees with Snapshot at %d", i)
		}
	}

	// Mid-ring cursor and limit.
	spans, start, _ = rec.SnapshotRange(15, 2)
	if start != 15 || len(spans) != 2 || spans[0].SpanID != full[3].SpanID {
		t.Fatalf("cursor 15 limit 2: start=%d len=%d", start, len(spans))
	}
	// Cursor past the end clamps to empty.
	spans, start, _ = rec.SnapshotRange(99, 0)
	if start != 20 || len(spans) != 0 {
		t.Fatalf("past-end cursor: start=%d len=%d", start, len(spans))
	}
}

func TestSnapshotRangeNilRecorder(t *testing.T) {
	var rec *SpanRecorder
	spans, start, total := rec.SnapshotRange(3, 10)
	if spans != nil || start != 0 || total != 0 {
		t.Fatalf("nil recorder: spans=%v start=%d total=%d", spans, start, total)
	}
	if s := rec.StartRemoteChild("t", "n", "00000000000000ff", 1); s != nil {
		t.Fatal("nil recorder minted a span")
	}
}

func TestStartRemoteChild(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(8, clk)
	parent := rec.StartRootSeq("tracer", "router.shard", 2)
	parentID := parent.ID()
	if len(parentID) != 16 {
		t.Fatalf("parent ID = %q", parentID)
	}

	child := rec.StartRemoteChild("tracer", "shard.search", parentID, 1)
	child.End()
	parent.End()
	var got SpanRecord
	for _, s := range rec.Snapshot() {
		if s.Name == "shard.search" {
			got = s
		}
	}
	if got.ParentID != parentID {
		t.Fatalf("remote child parent = %q, want %q", got.ParentID, parentID)
	}

	// Malformed / absent parent IDs degrade to a root identical to
	// StartRootSeq.
	for _, bad := range []string{"", "xyz", "0000000000000000", "00ff"} {
		s := rec.StartRemoteChild("tracer", "shard.search", bad, 3)
		want := mintSpanID("tracer", "shard.search", 0, 3)
		if s.spanID != want || s.parentID != 0 {
			t.Fatalf("parent %q: span=%x parent=%x, want root %x", bad, s.spanID, s.parentID, want)
		}
		s.End()
	}
}

func TestSpanzHandlerPaginates(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(16, clk)
	recordN(rec, clk, 25) // wraps: ring holds 9..24

	get := func(url string) SpanzPage {
		t.Helper()
		w := httptest.NewRecorder()
		SpanzHandler(rec, "shard-1").ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, w.Code, w.Body.String())
		}
		var page SpanzPage
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return page
	}

	page := get("/spanz?limit=10")
	if page.Version != SpanzVersion || page.Node != "shard-1" {
		t.Fatalf("page header = %+v", page)
	}
	if page.Total != 25 || page.Cursor != 9 || page.Dropped != 9 || len(page.Spans) != 10 {
		t.Fatalf("first page: %+v", page)
	}
	page2 := get("/spanz?cursor=19&limit=10")
	if page2.Cursor != 19 || page2.Dropped != 0 || len(page2.Spans) != 6 || page2.NextCursor != 25 {
		t.Fatalf("second page: %+v", page2)
	}

	for _, bad := range []string{"/spanz?cursor=x", "/spanz?limit=0", "/spanz?limit=-2"} {
		w := httptest.NewRecorder()
		SpanzHandler(rec, "shard-1").ServeHTTP(w, httptest.NewRequest("GET", bad, nil))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", bad, w.Code)
		}
	}

	// A nil recorder serves empty pages, not errors.
	w := httptest.NewRecorder()
	SpanzHandler(nil, "void").ServeHTTP(w, httptest.NewRequest("GET", "/spanz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("nil recorder: %d", w.Code)
	}
	var empty SpanzPage
	if err := json.Unmarshal(w.Body.Bytes(), &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Total != 0 || len(empty.Spans) != 0 || empty.Node != "void" {
		t.Fatalf("nil recorder page: %+v", empty)
	}
}

func TestFetchSpanzDrainsRing(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(64, clk)
	recordN(rec, clk, 40)

	srv := httptest.NewServer(http.StripPrefix("", spanzLimited(rec, 7)))
	defer srv.Close()
	got, err := FetchSpanz(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "node-a" || len(got.Spans) != 40 {
		t.Fatalf("fetched node=%q spans=%d", got.Node, len(got.Spans))
	}
	want := rec.Snapshot()
	for i := range want {
		if got.Spans[i].SpanID != want[i].SpanID {
			t.Fatalf("span %d out of order", i)
		}
	}
}

// spanzLimited wraps SpanzHandler forcing a small page size so FetchSpanz
// has to paginate.
func spanzLimited(rec *SpanRecorder, pageSize int) http.Handler {
	inner := SpanzHandler(rec, "node-a")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		q.Set("limit", itoa(pageSize))
		r.URL.RawQuery = q.Encode()
		inner.ServeHTTP(w, r)
	})
}

// TestSpanzConcurrentWithRecording paginates a live ring while writer
// goroutines hammer End — under -race this proves the cursor protocol and
// the ring share no unsynchronized state, and the cursor invariants
// (monotone windows, dropped accounting) hold mid-flight.
func TestSpanzConcurrentWithRecording(t *testing.T) {
	rec := NewSpanRecorder(128, simclock.NewManual(testEpoch))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := rec.StartRootSeq("trace-conc", "op", g*1_000_000+i)
				s.SetAttr("g", itoa(g))
				s.End()
			}
		}(g)
	}

	h := SpanzHandler(rec, "hot")
	cursor := uint64(0)
	for iter := 0; iter < 200; iter++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/spanz?limit=32&cursor="+itoa(int(cursor)), nil))
		var page SpanzPage
		if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Cursor < cursor {
			t.Fatalf("cursor moved backwards: asked %d got %d", cursor, page.Cursor)
		}
		if page.NextCursor != page.Cursor+uint64(len(page.Spans)) || page.NextCursor > page.Total {
			t.Fatalf("inconsistent page: %+v", page)
		}
		cursor = page.NextCursor
	}
	close(stop)
	wg.Wait()
}
