package telemetry

import (
	"strings"
	"testing"
	"time"

	"geoserp/internal/simclock"
)

// buildClusterRings simulates a router fan-out over two shards: the router
// records the request root and two fan-out legs, each shard records its
// server span as a remote child of the leg that called it.
func buildClusterRings(t *testing.T) []NodeSpans {
	t.Helper()
	clk := simclock.NewManual(testEpoch)
	router := NewSpanRecorder(32, clk)
	shard0 := NewSpanRecorder(32, clk)
	shard1 := NewSpanRecorder(32, clk)

	root := router.StartRoot("tracex", "serpd.request")
	leg0 := root.StartChild("router.shard")
	leg1 := root.StartChild("router.shard")
	clk.Advance(time.Millisecond)
	srv0 := shard0.StartRemoteChild("tracex", "shard.search", leg0.ID(), 1)
	srv1 := shard1.StartRemoteChild("tracex", "shard.search", leg1.ID(), 1)
	clk.Advance(time.Millisecond)
	srv0.End()
	srv1.End()
	leg0.End()
	leg1.End()
	root.End()

	return []NodeSpans{
		{Node: "router", Spans: router.Snapshot()},
		{Node: "shard-0", Spans: shard0.Snapshot()},
		{Node: "shard-1", Spans: shard1.Snapshot()},
	}
}

func TestStitchJoinsAcrossNodes(t *testing.T) {
	traces := Stitch(buildClusterRings(t))
	if len(traces) != 1 || traces[0].TraceID != "tracex" {
		t.Fatalf("stitched %d traces: %+v", len(traces), traces)
	}
	spans := traces[0].Spans
	if len(spans) != 5 {
		t.Fatalf("stitched %d spans, want 5", len(spans))
	}
	// Root first; server spans carry their node and link to router legs.
	if spans[0].Name != "serpd.request" || spans[0].Node != "router" {
		t.Fatalf("first span = %s on %s", spans[0].Name, spans[0].Node)
	}
	legs := map[string]string{} // leg span ID -> node of its server child
	for _, s := range spans {
		if s.Name == "shard.search" {
			legs[s.ParentID] = s.Node
		}
	}
	if len(legs) != 2 {
		t.Fatalf("server spans resolved %d distinct parents, want 2", len(legs))
	}
	for parent, node := range legs {
		found := false
		for _, s := range spans {
			if s.SpanID == parent && s.Name == "router.shard" && s.Node == "router" {
				found = true
			}
		}
		if !found {
			t.Fatalf("server span on %s links to %s, which is not a router leg", node, parent)
		}
	}
	if got := SpansOf(traces, "tracex"); len(got) != 5 {
		t.Fatalf("SpansOf = %d spans", len(got))
	}
	if got := SpansOf(traces, "absent"); got != nil {
		t.Fatal("SpansOf(absent) != nil")
	}
}

func TestStitchDeterministicAndDedups(t *testing.T) {
	nodes := buildClusterRings(t)
	a := Stitch(nodes)

	// Present the same rings with node order scrambled and the router ring
	// exported twice: output must be identical.
	scrambled := []NodeSpans{nodes[2], nodes[0], nodes[1], nodes[0]}
	b := Stitch(scrambled)
	if len(a) != len(b) || len(a[0].Spans) != len(b[0].Spans) {
		t.Fatalf("stitch not stable: %d/%d vs %d/%d traces/spans",
			len(a), len(a[0].Spans), len(b), len(b[0].Spans))
	}
	for i := range a[0].Spans {
		x, y := a[0].Spans[i], b[0].Spans[i]
		if x.SpanID != y.SpanID || x.Node != y.Node || x.Name != y.Name {
			t.Fatalf("span %d differs across node orderings:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestStitchOrdersTracesByStart(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	rec := NewSpanRecorder(32, clk)
	// Record "late" first so map/ring order disagrees with start order.
	late := rec.StartRoot("zz-late", "op")
	clk.Advance(time.Hour)
	early := rec.StartRootSeq("aa-early", "op", 1)
	early.End()
	late.End()
	// aa-early STARTED later, so it must sort second despite its ID.
	traces := Stitch([]NodeSpans{{Node: "n", Spans: rec.Snapshot()}})
	if len(traces) != 2 || traces[0].TraceID != "zz-late" || traces[1].TraceID != "aa-early" {
		ids := make([]string, len(traces))
		for i, tr := range traces {
			ids[i] = tr.TraceID
		}
		t.Fatalf("trace order = %s", strings.Join(ids, ","))
	}
}
