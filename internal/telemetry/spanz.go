package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// /spanz is the cluster's span export plane: every node (router and each
// shard) serves its SpanRecorder ring as cursor-paginated JSON, and the
// coordinator's stitcher pulls all of them to assemble cross-process
// traces. Cursors are lifetime span indices, so a reader pages through a
// live ring without rereads or skips: spans recorded mid-pagination simply
// extend the tail, and spans the ring overwrote are reported as dropped.

// SpanzVersion is the export format version carried in every page, bumped
// on any incompatible change to SpanzPage or SpanRecord.
const SpanzVersion = 1

// SpanzPath is the path nodes serve the export on.
const SpanzPath = "/spanz"

const (
	// DefaultSpanzLimit is the page size when the request names none.
	DefaultSpanzLimit = 1024
	// MaxSpanzLimit caps the page size a request may ask for.
	MaxSpanzLimit = 8192
)

// SpanzPage is one page of a node's span export.
type SpanzPage struct {
	Version int    `json:"version"`
	Node    string `json:"node"`
	// Total is the node's lifetime span count; Cursor is the lifetime
	// index of the first span in this page (>= the requested cursor when
	// the ring dropped spans in between, the gap being Dropped). The next
	// page starts at NextCursor; NextCursor == Total means "caught up".
	Total      uint64       `json:"total"`
	Cursor     uint64       `json:"cursor"`
	NextCursor uint64       `json:"next_cursor"`
	Dropped    uint64       `json:"dropped,omitempty"`
	Spans      []SpanRecord `json:"spans"`
}

// SpanzHandler serves rec's ring as paginated SpanzPage JSON under the
// query parameters cursor (default 0) and limit (default
// DefaultSpanzLimit, capped at MaxSpanzLimit). node names this process in
// every page — stitched traces carry it through to per-node Chrome lanes.
// A nil recorder serves empty pages rather than erroring, so mounting the
// endpoint is unconditional.
func SpanzHandler(rec *SpanRecorder, node string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cursor := uint64(0)
		if v := r.URL.Query().Get("cursor"); v != "" {
			c, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad cursor: "+v, http.StatusBadRequest)
				return
			}
			cursor = c
		}
		limit := DefaultSpanzLimit
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: "+v, http.StatusBadRequest)
				return
			}
			limit = n
		}
		if limit > MaxSpanzLimit {
			limit = MaxSpanzLimit
		}
		spans, start, total := rec.SnapshotRange(cursor, limit)
		page := SpanzPage{
			Version:    SpanzVersion,
			Node:       node,
			Total:      total,
			Cursor:     start,
			NextCursor: start + uint64(len(spans)),
			Spans:      spans,
		}
		if start > cursor {
			page.Dropped = start - cursor
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page)
	})
}

// FetchSpanz pages through the /spanz export at base (e.g.
// "http://shard-0") until it has drained the node's ring, returning every
// span plus the node's self-reported name. Spans recorded while paginating
// are picked up by later pages; callers wanting a consistent cut should
// quiesce the node first. The export's version must match SpanzVersion.
func FetchSpanz(c *http.Client, base string) (NodeSpans, error) {
	var out NodeSpans
	cursor := uint64(0)
	for {
		url := fmt.Sprintf("%s%s?cursor=%d&limit=%d", base, SpanzPath, cursor, MaxSpanzLimit)
		resp, err := c.Get(url)
		if err != nil {
			return out, fmt.Errorf("fetch %s: %w", url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, fmt.Errorf("read %s: %w", url, err)
		}
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("fetch %s: status %d", url, resp.StatusCode)
		}
		var page SpanzPage
		if err := json.Unmarshal(body, &page); err != nil {
			return out, fmt.Errorf("decode %s: %w", url, err)
		}
		if page.Version != SpanzVersion {
			return out, fmt.Errorf("%s: export version %d, want %d", url, page.Version, SpanzVersion)
		}
		out.Node = page.Node
		out.Spans = append(out.Spans, page.Spans...)
		if page.NextCursor >= page.Total {
			return out, nil
		}
		if page.NextCursor <= cursor && len(page.Spans) == 0 {
			// A server that stops making progress would loop forever;
			// treat it as a protocol violation instead.
			return out, fmt.Errorf("%s: cursor stuck at %d of %d", url, page.NextCursor, page.Total)
		}
		cursor = page.NextCursor
	}
}
