package telemetry

import (
	"runtime/debug"
	"sync"
)

// Build identifies the binary serving an observability endpoint: the Go
// toolchain it was compiled with and, when the module was built from a VCS
// checkout, the revision it was built at. Embedding it in live snapshots
// lets an auditor tie a scorecard to the exact code that produced it.
type Build struct {
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, empty when built outside a
	// checkout (e.g. from a source tarball or `go test` cache).
	Revision string `json:"revision,omitempty"`
	// Time is the commit timestamp in RFC 3339, empty when unknown.
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// ReadBuild returns the running binary's build identity. The result is
// computed once from runtime/debug.ReadBuildInfo and cached; it is
// constant for the life of the process.
var ReadBuild = sync.OnceValue(func() Build {
	b := Build{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})
