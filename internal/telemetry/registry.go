// Package telemetry is the repo's observability substrate: a stdlib-only
// metrics registry (counters, gauges, fixed-bucket histograms) with a
// Prometheus text-exposition renderer, deterministic trace-ID minting for
// reproducible campaigns, shared log/slog handler setup for the cmd/
// binaries, and a net/http/pprof mux for opt-in profiling.
//
// The paper's methodology is an attribution exercise — separating real
// location personalization from noise requires knowing which machine,
// browser, datacenter, and rate-limit decision produced each SERP — so the
// crawler, browser, serpserver, and engine all report through this
// package. The hot-path operations (Counter.Inc, Counter.Add,
// Histogram.Observe, CounterVec.With on an existing child) are
// lock-free/allocation-free so instrumentation never becomes the
// bottleneck it is supposed to find.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds (seconds) for
// request/stage latencies: sub-millisecond in-process stages through
// multi-second remote fetches.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricKind discriminates the family types in a Registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterVec
	kindGauge
	kindHistogram
	kindHistogramVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram, kindHistogramVec:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with its help text.
type family struct {
	name string
	help string
	kind metricKind
	m    any
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration methods are idempotent: asking for an
// existing name returns the existing metric (and panics if the kind
// differs, which is a programming error). A Registry is safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the existing family of the given name, panicking when it
// was registered with a different kind.
func (r *Registry) lookup(name string, kind metricKind) (*family, bool) {
	f, ok := r.families[name]
	if !ok {
		return nil, false
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)",
			name, kind, f.kind))
	}
	return f, true
}

// Counter registers (or returns) a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.lookup(name, kindCounter); ok {
		return f.m.(*Counter)
	}
	c := &Counter{}
	r.families[name] = &family{name: name, help: help, kind: kindCounter, m: c}
	return c
}

// CounterVec registers (or returns) a counter family with one label
// dimension — the shape every labelled metric in this repo needs (status
// code, card type, datacenter).
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.lookup(name, kindCounterVec); ok {
		v := f.m.(*CounterVec)
		if v.label != label {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q (was %q)",
				name, label, v.label))
		}
		return v
	}
	v := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.families[name] = &family{name: name, help: help, kind: kindCounterVec, m: v}
	return v
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.lookup(name, kindGauge); ok {
		return f.m.(*Gauge)
	}
	g := &Gauge{}
	r.families[name] = &family{name: name, help: help, kind: kindGauge, m: g}
	return g
}

// Histogram registers (or returns) a histogram with the given upper
// bounds (ascending; +Inf is implicit). A nil buckets slice uses
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.lookup(name, kindHistogram); ok {
		return f.m.(*Histogram)
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.families[name] = &family{name: name, help: help, kind: kindHistogram, m: h}
	return h
}

// HistogramVec registers (or returns) a histogram family with one label
// dimension (the stage-latency shape: one histogram per engine stage). A
// nil buckets slice uses DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.lookup(name, kindHistogramVec); ok {
		v := f.m.(*HistogramVec)
		if v.label != label {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q (was %q)",
				name, label, v.label))
		}
		return v
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	v := &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.families[name] = &family{name: name, help: help, kind: kindHistogramVec, m: v}
	return v
}

// Counter is a monotonically increasing uint64. Inc and Add are lock-free
// and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one and returns the new value (usable as a sequence number).
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a family of counters distinguished by one label value.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for a label value, creating it on first
// use. The lookup for an existing child takes a read lock and performs no
// allocation, so hot paths may call With inline; pre-resolving the child
// once is still marginally faster.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// Values snapshots every child as label value → count.
func (v *CounterVec) Values() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

// Total sums every child.
func (v *CounterVec) Total() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var t uint64
	for _, c := range v.children {
		t += c.Value()
	}
	return t
}

// Gauge is a settable float64 value (queue depth, worker count, config).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by delta (CAS loop, lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free
// and allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: the bucket list is short (≤ ~16) and in cache, which
	// beats a binary search's branch misses at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since start — the
// stage-timer idiom: defer h.ObserveSince(wall.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	// Latency histograms always measure real elapsed hardware time, never
	// a virtual schedule, so the one sanctioned wall-clock read lives here.
	h.Observe(time.Since(start).Seconds()) //lint:allow wallclock latency histograms measure real hardware time by definition
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramVec is a family of histograms distinguished by one label value,
// all sharing the same bucket bounds.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for a label value, creating it on first
// use. As with CounterVec.With, the existing-child lookup is
// allocation-free, but hot paths should pre-resolve the child once.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h = &Histogram{bounds: v.bounds, counts: make([]atomic.Uint64, len(v.bounds)+1)}
	v.children[value] = h
	return h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and labelled series in sorted order so
// output is stable for tests and diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch m := f.m.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", f.name, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(m.Value()))
		case *CounterVec:
			vals := m.Values()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", f.name, m.label, escapeLabel(k), vals[k])
			}
		case *Histogram:
			var cum uint64
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, m.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatFloat(m.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", f.name, m.Count())
		case *HistogramVec:
			m.mu.RLock()
			keys := make([]string, 0, len(m.children))
			for k := range m.children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h := m.children[k]
				lv := escapeLabel(k)
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket{%s=\"%s\",le=%q} %d\n",
						f.name, m.label, lv, formatFloat(bound), cum)
				}
				fmt.Fprintf(&b, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", f.name, m.label, lv, h.Count())
				fmt.Fprintf(&b, "%s_sum{%s=\"%s\"} %s\n", f.name, m.label, lv, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count{%s=\"%s\"} %d\n", f.name, m.label, lv, h.Count())
			}
			m.mu.RUnlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsHandler returns an http.Handler serving WritePrometheus with the
// text exposition content type — mount it at /metricsz.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
