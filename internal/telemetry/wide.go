package telemetry

import (
	"context"
	"strconv"
	"time"
)

// A WideEvent is the canonical request log record: ONE wide, flat line per
// /search carrying everything the continuous-audit pipeline needs to
// explain that page — per-stage engine durations, per-shard fan-out
// outcome, partial flag, status, trace ID — instead of scattering the
// story across ten narrow log lines. The struct is fixed-size (arrays, no
// maps or slices) so coordinators can pool and reuse events, and AppendText
// formats without allocating (pinned by BenchmarkWideEventAppend).
//
// A nil *WideEvent is a valid no-op sink, so instrumented code records
// unconditionally; only the coordinator that opted into wide events pays.
// One event must only be written from one goroutine at a time: the engine
// records stages sequentially, and the router records replica attempts
// after its fan-out barrier.

const (
	// MaxWideStages caps recorded pipeline stages per event.
	MaxWideStages = 8
	// MaxWideShards caps recorded shard legs per event.
	MaxWideShards = 16
)

// WideStage is one engine pipeline stage's duration.
type WideStage struct {
	Name string
	Dur  time.Duration
}

// WideShard is one replica attempt within a scatter-gather leg: the shard
// and replica contacted, the attempt outcome (ok, shed, breaker_open,
// error, canceled), whether it was a hedged backup request, and the
// client-observed duration. A single-replica topology records exactly one
// attempt per shard, so the record shape is unchanged from pre-replica
// events apart from the ".replica" suffix on the shard index.
type WideShard struct {
	Shard   int
	Replica int
	Outcome string
	Hedge   bool
	Dur     time.Duration
}

// WideEvent accumulates one request's wide log record.
type WideEvent struct {
	TraceID string
	Status  int
	Dur     time.Duration
	Partial string // X-Serp-Partial value; "" = full page
	Err     string // terminal error class; "" = none

	nstages int
	stages  [MaxWideStages]WideStage
	nshards int
	shards  [MaxWideShards]WideShard
	dropped int // stages + legs beyond capacity

	hedges    int // hedged backup requests fired
	hedgeWins int // ... that delivered the winning answer
}

// Reset clears the event for reuse.
func (e *WideEvent) Reset() {
	if e == nil {
		return
	}
	*e = WideEvent{}
}

// SetErr records the request's terminal error class. Nil-safe.
func (e *WideEvent) SetErr(class string) {
	if e == nil {
		return
	}
	e.Err = class
}

// Stage records one pipeline stage duration (dropped beyond
// MaxWideStages). Nil-safe.
func (e *WideEvent) Stage(name string, d time.Duration) {
	if e == nil {
		return
	}
	if e.nstages >= MaxWideStages {
		e.dropped++
		return
	}
	e.stages[e.nstages] = WideStage{Name: name, Dur: d}
	e.nstages++
}

// Shard records one replica attempt of a scatter-gather leg (dropped
// beyond MaxWideShards). Nil-safe.
func (e *WideEvent) Shard(shard, replica int, outcome string, hedge bool, d time.Duration) {
	if e == nil {
		return
	}
	if e.nshards >= MaxWideShards {
		e.dropped++
		return
	}
	e.shards[e.nshards] = WideShard{Shard: shard, Replica: replica, Outcome: outcome, Hedge: hedge, Dur: d}
	e.nshards++
}

// Hedge records one hedged backup request's result: won means the backup
// delivered the page, lost means the original answer arrived first.
// Nil-safe.
func (e *WideEvent) Hedge(won bool) {
	if e == nil {
		return
	}
	e.hedges++
	if won {
		e.hedgeWins++
	}
}

// Stages returns the recorded stages (a view into the event; valid until
// Reset).
func (e *WideEvent) Stages() []WideStage {
	if e == nil {
		return nil
	}
	return e.stages[:e.nstages]
}

// Shards returns the recorded shard legs (a view into the event; valid
// until Reset).
func (e *WideEvent) Shards() []WideShard {
	if e == nil {
		return nil
	}
	return e.shards[:e.nshards]
}

// AppendText appends the canonical flat record to b and returns it —
// space-separated key=value fields, durations as integer microseconds:
//
//	trace=f00d… status=200 dur_us=1874 partial=web err=deadline
//	stages=parse:12,noise:3,retrieve:901 shards=0.0:ok:901,1.1:shed:13
//	hedges=1/1
//
// Each shards entry is shard.replica:outcome:µs, with a ":h" suffix on
// hedged backup attempts; hedges=wins/fired summarizes hedging. partial,
// err, stages, shards, hedges, and dropped appear only when non-empty.
// Appending into a caller-reused buffer allocates nothing.
func (e *WideEvent) AppendText(b []byte) []byte {
	if e == nil {
		return b
	}
	b = append(b, "trace="...)
	b = append(b, e.TraceID...)
	b = append(b, " status="...)
	b = strconv.AppendInt(b, int64(e.Status), 10)
	b = append(b, " dur_us="...)
	b = strconv.AppendInt(b, e.Dur.Microseconds(), 10)
	if e.Partial != "" {
		b = append(b, " partial="...)
		b = append(b, e.Partial...)
	}
	if e.Err != "" {
		b = append(b, " err="...)
		b = append(b, e.Err...)
	}
	if e.nstages > 0 {
		b = append(b, " stages="...)
		b = e.appendStages(b)
	}
	if e.nshards > 0 {
		b = append(b, " shards="...)
		b = e.appendShards(b)
	}
	if e.hedges > 0 {
		b = append(b, " hedges="...)
		b = strconv.AppendInt(b, int64(e.hedgeWins), 10)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(e.hedges), 10)
	}
	if e.dropped > 0 {
		b = append(b, " dropped="...)
		b = strconv.AppendInt(b, int64(e.dropped), 10)
	}
	return b
}

// AppendStages appends the comma-separated name:µs stage list ("" when
// none were recorded).
func (e *WideEvent) AppendStages(b []byte) []byte {
	if e == nil {
		return b
	}
	return e.appendStages(b)
}

func (e *WideEvent) appendStages(b []byte) []byte {
	for i := 0; i < e.nstages; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, e.stages[i].Name...)
		b = append(b, ':')
		b = strconv.AppendInt(b, e.stages[i].Dur.Microseconds(), 10)
	}
	return b
}

// AppendShards appends the comma-separated shard.replica:outcome:µs
// attempt list ("" when none were recorded); hedged backup attempts carry
// a ":h" suffix.
func (e *WideEvent) AppendShards(b []byte) []byte {
	if e == nil {
		return b
	}
	return e.appendShards(b)
}

func (e *WideEvent) appendShards(b []byte) []byte {
	for i := 0; i < e.nshards; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(e.shards[i].Shard), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(e.shards[i].Replica), 10)
		b = append(b, ':')
		b = append(b, e.shards[i].Outcome...)
		b = append(b, ':')
		b = strconv.AppendInt(b, e.shards[i].Dur.Microseconds(), 10)
		if e.shards[i].Hedge {
			b = append(b, ":h"...)
		}
	}
	return b
}

// ---- context plumbing ----

type wideCtxKey struct{}

// WithWideEvent returns a context carrying the event, so layers below the
// coordinator (engine, router) can record into it without new plumbing.
func WithWideEvent(ctx context.Context, e *WideEvent) context.Context {
	return context.WithValue(ctx, wideCtxKey{}, e)
}

// WideEventFrom extracts the context's wide event (nil when absent).
func WideEventFrom(ctx context.Context) *WideEvent {
	e, _ := ctx.Value(wideCtxKey{}).(*WideEvent)
	return e
}
