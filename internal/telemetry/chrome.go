package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ProcessSpans is one process lane of a multi-process Chrome trace: a
// node's name (shown on the lane header instead of a bare pid) and the
// spans recorded there. The stitched cluster export renders the router and
// every shard as separate processes of one trace file.
type ProcessSpans struct {
	Name  string
	Spans []SpanRecord
}

// WriteChromeTrace renders one process's spans in Chrome trace-event
// format — shorthand for WriteChromeTraceProcs with a single "geoserp"
// process.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return WriteChromeTraceProcs(w, []ProcessSpans{{Name: "geoserp", Spans: spans}})
}

// WriteChromeTraceProcs renders the given processes in Chrome trace-event
// format (the {"traceEvents": [...]} JSON that Perfetto and
// chrome://tracing load): per process, one "M" process_name metadata row
// naming the lane, one "M" thread_name row per trace, and one "X" complete
// event per span, grouped onto one virtual thread per trace so a trace's
// request→stage spans nest visually.
//
// Output is byte-deterministic for a deterministic span set: pids follow
// the callers' process order, each process's spans are sorted by (start,
// trace ID, depth, span ID) — never by ring arrival order, which
// scheduling perturbs — timestamps are microseconds relative to the
// earliest span start across all processes, and thread IDs are assigned by
// first appearance in the sorted order. The JSON is hand-assembled so
// field order is fixed.
func WriteChromeTraceProcs(w io.Writer, procs []ProcessSpans) error {
	type lane struct {
		name   string
		sorted []SpanRecord
		tids   map[string]int
		order  []string
	}
	lanes := make([]lane, 0, len(procs))
	var epoch time.Time
	haveEpoch := false
	for _, p := range procs {
		sorted := make([]SpanRecord, len(p.Spans))
		copy(sorted, p.Spans)

		// Depth orders a parent before its children when both start at the
		// same instant (virtual clocks make ties common).
		byID := make(map[string]SpanRecord, len(sorted))
		for _, s := range sorted {
			byID[s.TraceID+"/"+s.SpanID] = s
		}
		depth := func(s SpanRecord) int {
			d := 0
			for s.ParentID != "" && d < len(sorted) {
				p, ok := byID[s.TraceID+"/"+s.ParentID]
				if !ok {
					break
				}
				s = p
				d++
			}
			return d
		}
		sort.Slice(sorted, func(i, j int) bool {
			a, b := sorted[i], sorted[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			if a.TraceID != b.TraceID {
				return a.TraceID < b.TraceID
			}
			if da, db := depth(a), depth(b); da != db {
				return da < db
			}
			return a.SpanID < b.SpanID
		})
		tids := make(map[string]int, 16)
		order := make([]string, 0, 16)
		for _, s := range sorted {
			if _, ok := tids[s.TraceID]; !ok {
				tids[s.TraceID] = len(tids) + 1
				order = append(order, s.TraceID)
			}
		}
		if len(sorted) > 0 && (!haveEpoch || sorted[0].Start.Before(epoch)) {
			epoch = sorted[0].Start
			haveEpoch = true
		}
		lanes = append(lanes, lane{name: p.Name, sorted: sorted, tids: tids, order: order})
	}

	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(line)
	}
	for i, ln := range lanes {
		pid := i + 1
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid, jsonString(ln.name)))
		for _, tr := range ln.order {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, ln.tids[tr], jsonString("trace "+tr)))
		}
		for _, s := range ln.sorted {
			ts := s.Start.Sub(epoch).Microseconds()
			dur := s.Dur().Microseconds()
			if dur < 0 {
				dur = 0
			}
			var args strings.Builder
			args.WriteString(fmt.Sprintf(`{"trace_id":%s,"span_id":%s`,
				jsonString(s.TraceID), jsonString(s.SpanID)))
			if s.ParentID != "" {
				args.WriteString(`,"parent_id":`)
				args.WriteString(jsonString(s.ParentID))
			}
			for _, a := range s.Attrs {
				args.WriteByte(',')
				args.WriteString(jsonString(a.Key))
				args.WriteByte(':')
				args.WriteString(jsonString(a.Val))
			}
			args.WriteByte('}')
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%d,"dur":%d,"args":%s}`,
				pid, ln.tids[s.TraceID], jsonString(s.Name), ts, dur, args.String()))
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonString JSON-encodes one string (quoting + escaping via the stdlib).
func jsonString(s string) string {
	buf, _ := json.Marshal(s)
	return string(buf)
}
