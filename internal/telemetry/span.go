package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"geoserp/internal/simclock"
)

// The span layer gives the flat trace IDs of MintTraceID internal
// structure: a Span is one timed operation (a fetch attempt, an engine
// ranking stage, a whole campaign phase) with a name, key/value attributes,
// and a parent — so "this page took 800ms" decomposes into "30ms engine,
// 60ms chaos latency, two retries of 350ms backoff".
//
// Three properties matter for this repo:
//
//   - Determinism. Span IDs are minted from stable keys (trace ID, name,
//     parent, sequence) — never from randomness or memory addresses — and
//     timestamps come from an injected simclock.Clock. Under a Manual
//     clock a campaign's recorded timeline is byte-for-byte identical
//     across runs at the same seed.
//   - Bounded memory. Finished spans land in a fixed-capacity ring buffer
//     (SpanRecorder); a long-lived serpd keeps the N most recent spans and
//     never grows without bound.
//   - Zero-alloc hot path. StartRoot/StartChild/SetAttr/End allocate
//     nothing in steady state: live spans come from a sync.Pool, attributes
//     live in a fixed-size array, and recording copies the span by value
//     into a preallocated ring slot (pinned by TestSpanHotPathZeroAlloc).
//
// Every Span and SpanRecorder method is nil-receiver safe, so
// instrumented code never guards: an untraced request pays only nil checks.

// Across process boundaries the client's 1-based fetch attempt number
// rides in httpheader.TraceAttempt (the server folds it into its span IDs
// so each retry yields a distinct, deterministic server span) and the
// caller's span ID in httpheader.ParentSpan, so a server can mint its
// span as a remote child of the exact client-side span that issued the
// request instead of an orphan root.

// MaxSpanAttrs is the attribute capacity of one span; SetAttr drops
// attributes beyond it (recorded in the span's "attrs_dropped" count).
const MaxSpanAttrs = 8

// Attr is one span attribute.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one in-flight timed operation. Obtain one from
// SpanRecorder.StartRoot (or StartSpan with a context), optionally attach
// attributes and children, then call End exactly once; the span is
// recorded and recycled, and must not be touched afterwards. A nil *Span
// is a valid no-op span.
type Span struct {
	rec      *SpanRecorder
	traceID  string
	name     string
	spanID   uint64
	parentID uint64
	start    time.Time
	childSeq uint32 // via atomic; children started concurrently stay safe
	dropped  uint32
	nattrs   int
	attrs    [MaxSpanAttrs]Attr
}

// TraceID returns the trace the span belongs to ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// ID returns the span's 16-hex-digit ID ("" for a nil span) — the wire
// form carried in the httpheader.ParentSpan header.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return formatSpanID(s.spanID)
}

// SetAttr attaches a key/value attribute. Attributes beyond MaxSpanAttrs
// are dropped (counted, surfaced as "attrs_dropped" in the record).
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	if s.nattrs >= MaxSpanAttrs {
		s.dropped++
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Val: val}
	s.nattrs++
}

// StartChild starts a child span. Child IDs mix the parent's ID with a
// per-parent sequence number, so sequentially created children are
// deterministic; concurrent operations should instead be roots of their
// own traces (as fetch attempts are), since arrival order would leak into
// the sequence.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	seq := atomic.AddUint32(&s.childSeq, 1)
	c := s.rec.getSpan()
	c.traceID = s.traceID
	c.name = name
	c.parentID = s.spanID
	c.spanID = mintSpanID(s.traceID, name, s.spanID, uint64(seq))
	c.start = s.rec.clock.Now()
	return c
}

// End stamps the span's end time on the recorder's clock and commits it to
// the ring buffer. The span must not be used after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.record(s, s.rec.clock.Now())
}

// SpanRecord is one finished span as read back from a recorder — the
// export shape for /tracez JSON and the Chrome trace writer. IDs are
// 16-hex-digit strings; ParentID is empty for roots.
type SpanRecord struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// Dur returns the span's duration.
func (r SpanRecord) Dur() time.Duration { return r.End.Sub(r.Start) }

// Attr returns the value of the named attribute ("" when absent).
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// spanSlot is the by-value ring representation of a finished span.
type spanSlot struct {
	traceID  string
	name     string
	spanID   uint64
	parentID uint64
	start    time.Time
	end      time.Time
	dropped  uint32
	nattrs   int
	attrs    [MaxSpanAttrs]Attr
}

// SpanRecorder collects finished spans into a bounded ring buffer: once
// capacity is reached the oldest span is overwritten. It is safe for
// concurrent use, and a nil *SpanRecorder is a valid no-op recorder.
type SpanRecorder struct {
	clock simclock.Clock
	cap   int
	pool  sync.Pool

	mu    sync.Mutex
	slots []spanSlot
	next  int    // overwrite cursor once len(slots) == cap
	total uint64 // lifetime spans recorded
}

// DefaultSpanCapacity is the ring size when NewSpanRecorder is given a
// non-positive capacity.
const DefaultSpanCapacity = 4096

// NewSpanRecorder returns a recorder keeping the most recent capacity
// spans (DefaultSpanCapacity when capacity <= 0), timing them on clock
// (wall clock when nil). Virtual-time campaigns pass their Manual clock so
// recorded timelines are deterministic.
func NewSpanRecorder(capacity int, clock simclock.Clock) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if clock == nil {
		clock = simclock.Wall()
	}
	r := &SpanRecorder{clock: clock, cap: capacity}
	r.pool.New = func() any { return new(Span) }
	return r
}

// Capacity returns the ring size.
func (r *SpanRecorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Len returns how many spans the ring currently holds.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}

// Total returns how many spans have ever been recorded (including those
// the ring has since dropped).
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// getSpan leases a reset *Span from the pool.
func (r *SpanRecorder) getSpan() *Span {
	s := r.pool.Get().(*Span)
	s.rec = r
	s.parentID = 0
	s.childSeq = 0
	s.dropped = 0
	s.nattrs = 0
	return s
}

// StartRoot starts a root span of the given trace. Equivalent to
// StartRootSeq with seq 0 — use StartRootSeq when the same (trace, name)
// pair can legitimately recur (retry attempts) so each occurrence mints a
// distinct ID.
func (r *SpanRecorder) StartRoot(traceID, name string) *Span {
	return r.StartRootSeq(traceID, name, 0)
}

// StartRootSeq starts a root span whose ID is minted deterministically
// from (traceID, name, seq). A nil recorder returns a nil (no-op) span.
func (r *SpanRecorder) StartRootSeq(traceID, name string, seq int) *Span {
	if r == nil {
		return nil
	}
	s := r.getSpan()
	s.traceID = traceID
	s.name = name
	s.spanID = mintSpanID(traceID, name, 0, uint64(seq))
	s.start = r.clock.Now()
	return s
}

// StartRemoteChild starts a span that is a child of a span in ANOTHER
// process: parentID is the 16-hex-digit Span.ID the caller shipped over
// the httpheader.ParentSpan header. When parentID is empty or malformed
// the span degrades to a root (exactly StartRootSeq), so servers handle
// untraced callers for free. A nil recorder returns a nil (no-op) span.
func (r *SpanRecorder) StartRemoteChild(traceID, name, parentID string, seq int) *Span {
	if r == nil {
		return nil
	}
	pid, ok := parseSpanID(parentID)
	if !ok {
		return r.StartRootSeq(traceID, name, seq)
	}
	s := r.getSpan()
	s.traceID = traceID
	s.name = name
	s.parentID = pid
	s.spanID = mintSpanID(traceID, name, pid, uint64(seq))
	s.start = r.clock.Now()
	return s
}

// record commits s to the ring and recycles it.
func (r *SpanRecorder) record(s *Span, end time.Time) {
	r.mu.Lock()
	var slot *spanSlot
	if len(r.slots) < r.cap {
		r.slots = append(r.slots, spanSlot{})
		slot = &r.slots[len(r.slots)-1]
	} else {
		slot = &r.slots[r.next]
		r.next++
		if r.next == r.cap {
			r.next = 0
		}
	}
	slot.traceID = s.traceID
	slot.name = s.name
	slot.spanID = s.spanID
	slot.parentID = s.parentID
	slot.start = s.start
	slot.end = end
	slot.dropped = s.dropped
	slot.nattrs = s.nattrs
	slot.attrs = s.attrs
	r.total++
	r.mu.Unlock()
	s.rec = nil
	r.pool.Put(s)
}

// Snapshot returns the ring's spans, oldest first, as export records.
// Arrival order is not deterministic under concurrency; deterministic
// consumers (WriteChromeTrace) sort by stable keys.
func (r *SpanRecorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.slots))
	if len(r.slots) == r.cap {
		for i := r.next; i < len(r.slots); i++ {
			out = append(out, r.slots[i].record())
		}
		for i := 0; i < r.next; i++ {
			out = append(out, r.slots[i].record())
		}
	} else {
		for i := range r.slots {
			out = append(out, r.slots[i].record())
		}
	}
	return out
}

// record converts a ring slot to its export shape.
func (sl *spanSlot) record() SpanRecord {
	rec := SpanRecord{
		TraceID: sl.traceID,
		SpanID:  formatSpanID(sl.spanID),
		Name:    sl.name,
		Start:   sl.start,
		End:     sl.end,
	}
	if sl.parentID != 0 {
		rec.ParentID = formatSpanID(sl.parentID)
	}
	n := sl.nattrs
	if n > 0 || sl.dropped > 0 {
		rec.Attrs = make([]Attr, n, n+1)
		copy(rec.Attrs, sl.attrs[:n])
		if sl.dropped > 0 {
			rec.Attrs = append(rec.Attrs, Attr{Key: "attrs_dropped", Val: itoa(int(sl.dropped))})
		}
	}
	return rec
}

// SnapshotRange returns up to limit spans starting at the lifetime index
// cursor (the cursor of span N is N-1 spans after the first ever
// recorded), plus the cursor of the first span actually returned and the
// recorder's lifetime total. When cursor points at spans the ring has
// already overwritten, the window silently advances to the oldest span
// still held — the gap (start − cursor) is the number dropped. limit <= 0
// means "the rest of the ring". A nil recorder returns (nil, 0, 0).
//
// Cursors are stable across concurrent recording: new spans only ever
// append lifetime indices, so a paginating reader resumes at next = start
// + len(spans) without rereading or skipping anything still in the ring.
func (r *SpanRecorder) SnapshotRange(cursor uint64, limit int) (spans []SpanRecord, start, total uint64) {
	if r == nil {
		return nil, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.total - uint64(len(r.slots))
	start = cursor
	if start < oldest {
		start = oldest
	}
	if start > r.total {
		start = r.total
	}
	n := int(r.total - start)
	if limit > 0 && n > limit {
		n = limit
	}
	spans = make([]SpanRecord, 0, n)
	for j := 0; j < n; j++ {
		// The j-th span at/after start sits (start-oldest+j) slots past the
		// ring's oldest element.
		k := int(start-oldest) + j
		if len(r.slots) == r.cap {
			k = (r.next + k) % r.cap
		}
		spans = append(spans, r.slots[k].record())
	}
	return spans, start, r.total
}

// ---- deterministic span-ID minting ----

// hashKey is FNV-1a over traceID and name with the same 0x1f separator
// detrand.Hash uses, hand-rolled so the hot path never converts strings to
// byte slices (which would allocate).
func hashKey(traceID, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(traceID); i++ {
		h ^= uint64(traceID[i])
		h *= prime64
	}
	h ^= 0x1f
	h *= prime64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= 0x1f
	h *= prime64
	return h
}

// mintSpanID derives a span ID from stable keys via a SplitMix64 finalize.
// Zero is reserved to mean "no parent", so minted IDs avoid it.
func mintSpanID(traceID, name string, parent, seq uint64) uint64 {
	z := hashKey(traceID, name) ^ parent ^ (seq+1)*0x9e3779b97f4a7c15
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// formatSpanID renders an ID as 16 hex digits without fmt (Snapshot is a
// read path, but keeping it cheap keeps /tracez scrape-safe).
func formatSpanID(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// parseSpanID parses the 16-hex-digit wire form of a span ID. The zero ID
// is reserved for "no parent", so "000…0" is rejected like malformed input.
func parseSpanID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	if id == 0 {
		return 0, false
	}
	return id, true
}

// itoa is a minimal non-negative integer formatter.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// ---- context plumbing ----

type recorderCtxKey struct{}
type spanCtxKey struct{}

// WithSpanRecorder returns a context carrying the recorder, making
// StartSpan usable by code that only sees the context.
func WithSpanRecorder(ctx context.Context, r *SpanRecorder) context.Context {
	return context.WithValue(ctx, recorderCtxKey{}, r)
}

// SpanRecorderFrom extracts the context's recorder (nil when absent).
func SpanRecorderFrom(ctx context.Context) *SpanRecorder {
	r, _ := ctx.Value(recorderCtxKey{}).(*SpanRecorder)
	return r
}

// WithSpan returns a context carrying the span as the current span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the context's current span (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a span named name: a child of the context's current
// span when one is set, else a root on the context's recorder keyed by the
// context's trace ID, else a no-op nil span. The returned context carries
// the new span, so nested StartSpan calls build the tree naturally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFrom(ctx); parent != nil {
		s := parent.StartChild(name)
		return WithSpan(ctx, s), s
	}
	if r := SpanRecorderFrom(ctx); r != nil {
		s := r.StartRoot(TraceID(ctx), name)
		return WithSpan(ctx, s), s
	}
	return ctx, nil
}
