package telemetry

import (
	"context"
	"fmt"

	"geoserp/internal/detrand"
)

// TraceHeader is the HTTP header carrying the request's trace ID: the
// crawler mints one per query, the browser sends it, the serpserver echoes
// it back and logs it, and the stored page record keeps it — so a
// divergent result in the analysis can be joined back to the exact request
// that produced it.
const TraceHeader = "X-Trace-Id"

// DeadlineHeader carries the client's absolute request deadline as unix
// milliseconds. Client and server share a clock domain — the campaign
// clock in-process, wall time in live deployments — so an absolute
// instant survives queueing delays that a relative budget would not.
// Servers use it to shed requests that cannot be admitted in time and to
// abandon doomed work mid-stage instead of finishing a page nobody will
// read.
const DeadlineHeader = "X-Deadline-Ms"

// MintTraceID derives a 16-hex-digit trace ID from a seed and a stable key
// (e.g. phase, granularity, day, term, location, role). Minting through
// detrand rather than a random source keeps repro campaigns byte-for-byte
// reproducible while still spreading IDs uniformly.
func MintTraceID(seed uint64, parts ...string) string {
	rng := detrand.NewKeyed(seed, append([]string{"trace"}, parts...)...)
	return fmt.Sprintf("%016x", rng.Uint64())
}

// ctxKey is the private context key type for trace IDs.
type ctxKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceID extracts the trace ID from a context ("" when absent).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
