package telemetry

import (
	"context"
	"fmt"

	"geoserp/internal/detrand"
)

// The trace ID travels between processes in the httpheader.TraceID
// header: the crawler mints one per query, the browser sends it, the
// serpserver echoes it back and logs it, and the stored page record keeps
// it — so a divergent result in the analysis can be joined back to the
// exact request that produced it. The client's absolute deadline rides
// beside it in httpheader.DeadlineMs (unix milliseconds on the shared
// clock domain, surviving queueing delays that a relative budget would
// not).

// MintTraceID derives a 16-hex-digit trace ID from a seed and a stable key
// (e.g. phase, granularity, day, term, location, role). Minting through
// detrand rather than a random source keeps repro campaigns byte-for-byte
// reproducible while still spreading IDs uniformly.
func MintTraceID(seed uint64, parts ...string) string {
	rng := detrand.NewKeyed(seed, append([]string{"trace"}, parts...)...)
	return fmt.Sprintf("%016x", rng.Uint64())
}

// ctxKey is the private context key type for trace IDs.
type ctxKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceID extracts the trace ID from a context ("" when absent).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
