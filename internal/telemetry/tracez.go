package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TraceView is one trace as served by /tracez: its spans sorted
// parent-before-child (start, then tree depth, then span ID).
type TraceView struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
}

// TracezSnapshot groups the recorder's spans into per-trace views, most
// recently finished trace first — the shape /tracez serves.
func TracezSnapshot(rec *SpanRecorder, limit int) []TraceView {
	spans := rec.Snapshot()
	byTrace := make(map[string][]SpanRecord)
	order := make([]string, 0, 16)
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	// Most recently touched trace first: the ring is oldest-first, so walk
	// first-appearance order backwards.
	views := make([]TraceView, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		if limit > 0 && len(views) >= limit {
			break
		}
		tr := order[i]
		ss := byTrace[tr]
		depth := spanDepths(ss)
		sort.SliceStable(ss, func(a, b int) bool {
			x, y := ss[a], ss[b]
			if !x.Start.Equal(y.Start) {
				return x.Start.Before(y.Start)
			}
			if dx, dy := depth[x.SpanID], depth[y.SpanID]; dx != dy {
				return dx < dy
			}
			return x.SpanID < y.SpanID
		})
		views = append(views, TraceView{TraceID: tr, Spans: ss})
	}
	return views
}

// spanDepths maps span ID → distance from its trace root.
func spanDepths(spans []SpanRecord) map[string]int {
	parent := make(map[string]string, len(spans))
	for _, s := range spans {
		parent[s.SpanID] = s.ParentID
	}
	depth := make(map[string]int, len(spans))
	for _, s := range spans {
		d, id := 0, s.SpanID
		for parent[id] != "" && d < len(spans) {
			id = parent[id]
			d++
		}
		depth[s.SpanID] = d
	}
	return depth
}

// TracezHandler serves the recorder's recent traces: JSON by default (or
// with ?format=json), a minimal HTML list with ?format=html or when the
// client prefers text/html. ?limit=N caps the number of traces returned;
// ?trace=<id> narrows the output to one trace (an empty trace list, not an
// error, when the ring no longer holds it).
func TracezHandler(rec *SpanRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		want := r.URL.Query().Get("trace")
		if want != "" {
			// The filter scans the whole ring: a trace old enough to fall
			// outside ?limit= is still findable by ID.
			limit = 0
		}
		views := TracezSnapshot(rec, limit)
		if want != "" {
			filtered := views[:0:0]
			for _, v := range views {
				if v.TraceID == want {
					filtered = append(filtered, v)
				}
			}
			views = filtered
		}
		format := r.URL.Query().Get("format")
		if format == "" && strings.Contains(r.Header.Get("Accept"), "text/html") {
			format = "html"
		}
		if format == "html" {
			writeTracezHTML(w, rec, views)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Capacity int         `json:"capacity"`
			Total    uint64      `json:"total_recorded"`
			Traces   []TraceView `json:"traces"`
		}{rec.Capacity(), rec.Total(), views})
	})
}

func writeTracezHTML(w http.ResponseWriter, rec *SpanRecorder, views []TraceView) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!doctype html><title>tracez</title>" +
		"<style>body{font-family:monospace}li{list-style:none}</style>" +
		"<h1>tracez</h1>")
	fmt.Fprintf(&b, "<p>%d spans held (capacity %d, %d recorded in total)</p>",
		rec.Len(), rec.Capacity(), rec.Total())
	for _, v := range views {
		d := spanDepths(v.Spans)
		fmt.Fprintf(&b, "<h2>trace %s</h2><ul>", html.EscapeString(v.TraceID))
		for _, s := range v.Spans {
			pad := strings.Repeat("&nbsp;", 4*d[s.SpanID])
			fmt.Fprintf(&b, "<li>%s%s · %s · %s", pad,
				html.EscapeString(s.Name), s.Dur(), s.SpanID[:8])
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, " · %s=%s",
					html.EscapeString(a.Key), html.EscapeString(a.Val))
			}
			b.WriteString("</li>")
		}
		b.WriteString("</ul>")
	}
	fmt.Fprint(w, b.String())
}
