// Package detrand provides deterministic, seedable pseudo-randomness keyed
// by strings. Every stochastic choice in the synthetic engine and corpus —
// which businesses exist near a grid cell, which A/B bucket a request lands
// in, how news rotates day to day — is derived from hashes of stable keys,
// so the entire 30-day study is exactly reproducible from a single root
// seed while still exhibiting realistic variation across keys.
//
// The generator is SplitMix64, which has excellent statistical behaviour
// for this purpose and is trivially portable.
package detrand

import "hash/fnv"

// Hash folds the given string parts into a 64-bit key using FNV-1a with a
// separator byte between parts (so Hash("ab","c") != Hash("a","bc")).
func Hash(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	return h.Sum64()
}

// RNG is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// NewKeyed returns an RNG seeded from a hash of the given parts mixed with
// seed — the common idiom for "randomness attached to an entity".
func NewKeyed(seed uint64, parts ...string) *RNG {
	return New(seed ^ Hash(parts...))
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns an approximately standard-normal variate using the
// Irwin–Hall sum of twelve uniforms — ample fidelity for jitter terms.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Sample returns k distinct elements of xs chosen uniformly without
// replacement (all of xs, shuffled, when k >= len(xs)). The input is not
// mutated.
func Sample[T any](r *RNG, xs []T, k int) []T {
	cp := make([]T, len(xs))
	copy(cp, xs)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}
