package detrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashSeparatesParts(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("Hash does not separate parts")
	}
	if Hash("x") != Hash("x") {
		t.Fatal("Hash not deterministic")
	}
	if Hash() == Hash("") {
		t.Fatal("Hash() should differ from Hash(\"\")")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := New(43)
	d := New(42)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestNewKeyed(t *testing.T) {
	a := NewKeyed(1, "places", "cell-3-4")
	b := NewKeyed(1, "places", "cell-3-4")
	if a.Uint64() != b.Uint64() {
		t.Fatal("NewKeyed not deterministic")
	}
	c := NewKeyed(1, "places", "cell-3-5")
	d := NewKeyed(1, "places", "cell-3-4")
	if c.Uint64() == d.Uint64() {
		t.Fatal("NewKeyed collision across keys (possible but vanishingly unlikely)")
	}
	e := NewKeyed(2, "places", "cell-3-4")
	f := NewKeyed(1, "places", "cell-3-4")
	if e.Uint64() == f.Uint64() {
		t.Fatal("NewKeyed ignores seed")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) produced only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRangeAndBool(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range = %v", v)
		}
	}
	always, never := 0, 0
	for i := 0; i < 1000; i++ {
		if r.Bool(1.0) {
			always++
		}
		if r.Bool(0.0) {
			never++
		}
	}
	if always != 1000 || never != 0 {
		t.Fatalf("Bool extremes: always=%d never=%d", always, never)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPickAndSample(t *testing.T) {
	r := New(13)
	xs := []string{"a", "b", "c", "d"}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[Pick(r, xs)]++
	}
	for _, x := range xs {
		if counts[x] < 700 {
			t.Fatalf("Pick heavily skewed: %v", counts)
		}
	}
	s := Sample(r, xs, 2)
	if len(s) != 2 || s[0] == s[1] {
		t.Fatalf("Sample = %v", s)
	}
	all := Sample(r, xs, 10)
	if len(all) != 4 {
		t.Fatalf("Sample overshoot = %v", all)
	}
	// Input not mutated check needs fresh comparison since Sample shuffles a copy.
	if xs[0] != "a" || xs[1] != "b" || xs[2] != "c" || xs[3] != "d" {
		t.Fatalf("Sample mutated input: %v", xs)
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 30)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		sum := 0
		for _, v := range xs {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
