package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geoserp/internal/serp"
	"geoserp/internal/storage"
)

// writeFixture writes a tiny two-location campaign file.
func writeFixture(t *testing.T) string {
	t.Helper()
	page := func(links ...string) *serp.Page {
		p := &serp.Page{Query: "Coffee", Location: "41.000000,-81.000000"}
		for _, l := range links {
			p.Cards = append(p.Cards, serp.Card{
				Type:    serp.Organic,
				Results: []serp.Result{{URL: l, Title: l}},
			})
		}
		return p
	}
	mk := func(loc string, role storage.Role, links ...string) storage.Observation {
		return storage.Observation{
			Term: "Coffee", Category: "local", Granularity: "county",
			LocationID: loc, Role: role, Day: 0, MachineIP: "10.0.0.1",
			FetchedAt: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
			Page:      page(links...),
		}
	}
	obs := []storage.Observation{
		mk("d/1", storage.Treatment, "a", "b"),
		mk("d/1", storage.Control, "a", "b"),
		mk("d/2", storage.Treatment, "a", "c"),
		mk("d/2", storage.Control, "a", "c"),
	}
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	if err := storage.SaveJSONL(path, obs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyzeAllFigures(t *testing.T) {
	path := writeFixture(t)
	var buf strings.Builder
	if err := runAnalyze(options{In: path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 2", "Figure 5", "Figure 8",
		"Demographics", "Fidelity scorecard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunAnalyzeSingleFigure(t *testing.T) {
	path := writeFixture(t)
	var buf strings.Builder
	if err := runAnalyze(options{In: path, Figure: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2") {
		t.Fatal("Figure 2 missing")
	}
	if strings.Contains(out, "Figure 5") || strings.Contains(out, "Table 1") {
		t.Fatal("unrequested figures printed")
	}
}

func TestRunAnalyzeCSVExport(t *testing.T) {
	path := writeFixture(t)
	csvDir := filepath.Join(t.TempDir(), "csv")
	var buf strings.Builder
	if err := runAnalyze(options{In: path, CSVDir: csvDir, Extended: true}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"figure2.csv", "figure5.csv", "figure8.csv",
		"demographics.csv", "domain_bias.csv", "distance_decay.csv", "clusters_county.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, f)); err != nil {
			t.Fatalf("missing export %s: %v", f, err)
		}
	}
}

func TestRunAnalyzeErrors(t *testing.T) {
	var buf strings.Builder
	if err := runAnalyze(options{In: "/nonexistent.jsonl"}, &buf); err == nil {
		t.Fatal("missing input accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{garbage}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(options{In: bad}, &buf); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestRunAnalyzeSVGExport(t *testing.T) {
	path := writeFixture(t)
	svgDir := filepath.Join(t.TempDir(), "svg")
	var buf strings.Builder
	if err := runAnalyze(options{In: path, SVGDir: svgDir, Extended: true}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"figure2_edit.svg", "figure2_jaccard.svg", "figure3.svg",
		"figure4.svg", "figure5.svg", "figure6.svg", "figure7.svg",
		"figure8_county.svg", "distance_decay.svg"} {
		b, err := os.ReadFile(filepath.Join(svgDir, f))
		if err != nil {
			t.Fatalf("missing SVG %s: %v", f, err)
		}
		if !strings.HasPrefix(string(b), "<svg") {
			t.Fatalf("%s is not SVG", f)
		}
	}
}

func TestRunAnalyzeHTMLReport(t *testing.T) {
	path := writeFixture(t)
	htmlPath := filepath.Join(t.TempDir(), "report.html")
	var buf strings.Builder
	if err := runAnalyze(options{In: path, HTMLPath: htmlPath}, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(b)
	for _, want := range []string{"<!doctype html>", "Fidelity scorecard",
		"Figure 5", "<svg", "reproduction report"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("HTML report missing %q", want)
		}
	}
}
