package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"geoserp/internal/analysis"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/report"
	"geoserp/internal/storage"
)

// options collects the analyze command's inputs.
type options struct {
	// In is the JSONL observations path.
	In string
	// Figure restricts output to one figure (0 = all).
	Figure int
	// CSVDir, when set, receives CSV exports.
	CSVDir string
	// SVGDir, when set, receives SVG figure images.
	SVGDir string
	// HTMLPath, when set, receives a single self-contained HTML report.
	HTMLPath string
	// Extended also runs the §5 follow-up analyses.
	Extended bool
}

// runAnalyze loads the crawl and writes the requested figures to w.
func runAnalyze(opts options, w io.Writer) error {
	obs, err := storage.LoadJSONL(opts.In)
	if err != nil {
		return err
	}
	d, err := analysis.NewDataset(obs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "analyze: %d observations, %d slots, days=%v\n\n",
		len(obs), d.Pairs(), d.Days())

	show := func(n int) bool { return opts.Figure == 0 || opts.Figure == n }

	var exports []func() error
	export := func(name string, tbl *storage.Table) {
		if opts.CSVDir == "" {
			return
		}
		exports = append(exports, func() error {
			return tbl.SaveCSV(filepath.Join(opts.CSVDir, name))
		})
	}
	svg := func(name, doc string) {
		if opts.SVGDir == "" {
			return
		}
		exports = append(exports, func() error {
			if err := os.MkdirAll(opts.SVGDir, 0o755); err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(opts.SVGDir, name), []byte(doc), 0o644)
		})
	}

	if show(1) {
		fmt.Fprintln(w, report.Table1(queries.Table1Terms()))
	}
	if show(2) {
		cells := d.NoiseByGranularity()
		fmt.Fprintln(w, report.Figure2(cells))
		export("figure2.csv", report.Figure2CSV(cells))
		svg("figure2_edit.svg", report.Figure2SVG(cells))
		svg("figure2_jaccard.svg", report.Figure2JaccardSVG(cells))
	}
	if show(3) {
		terms := d.NoisePerTerm("local")
		fmt.Fprintln(w, report.Figure3(terms))
		export("figure3.csv", report.Figure3CSV(terms))
		svg("figure3.svg", report.Figure3SVG(terms))
	}
	if show(4) {
		attr := d.NoiseByResultType("local", "county")
		fmt.Fprintln(w, report.Figure4(attr))
		export("figure4.csv", report.Figure4CSV(attr))
		svg("figure4.svg", report.Figure4SVG(attr))
	}
	if show(5) {
		cells := d.PersonalizationByGranularity()
		fmt.Fprintln(w, report.Figure5(cells))
		export("figure5.csv", report.Figure5CSV(cells))
		svg("figure5.svg", report.Figure5SVG(cells))
	}
	if show(6) {
		terms := d.PersonalizationPerTerm("local")
		fmt.Fprintln(w, report.Figure6(terms))
		export("figure6.csv", report.Figure6CSV(terms))
		svg("figure6.svg", report.Figure6SVG(terms))
	}
	if show(7) {
		cells := d.PersonalizationByResultType()
		fmt.Fprintln(w, report.Figure7(cells))
		export("figure7.csv", report.Figure7CSV(cells))
		svg("figure7.svg", report.Figure7SVG(cells))
	}
	if show(8) {
		series := d.ConsistencyOverTime("local")
		fmt.Fprintln(w, report.Figure8(series))
		export("figure8.csv", report.Figure8CSV(series))
		for _, s := range series {
			svg("figure8_"+s.Granularity+".svg", report.Figure8SVG(s))
		}
	}
	if opts.Figure == 0 {
		rows := d.DemographicCorrelations(geo.StudyDataset(), "local")
		fmt.Fprintln(w, report.Demographics(rows))
		export("demographics.csv", report.DemographicsCSV(rows))
		fmt.Fprintln(w, report.Scorecard(d.Scorecard()))
	}
	if opts.Extended {
		for _, g := range d.Granularities() {
			m := d.LocationSimilarity(g, "local")
			noise := 0.0
			for _, c := range d.NoiseByGranularity() {
				if c.Granularity == g && c.Category == "local" {
					noise = c.Edit.Mean
				}
			}
			threshold := noise * 1.3
			clusters := m.Clusters(threshold)
			fmt.Fprintln(w, report.Clusters(g, clusters, threshold))
			export("clusters_"+g+".csv", report.ClustersCSV(g, clusters))
		}
		scopes := d.PoliticianScopeBreakdown(queries.StudyCorpus())
		fmt.Fprintln(w, report.ScopeBreakdown(scopes))
		export("politician_scopes.csv", report.ScopeBreakdownCSV(scopes))
		fmt.Fprintln(w, report.CommonNames(d.CommonNameAmbiguity(queries.StudyCorpus())))
		bias := d.DomainBiasByLocation("state", "local", 0.02)
		fmt.Fprintln(w, report.DomainBias(bias, 25))
		export("domain_bias.csv", report.DomainBiasCSV(bias))
		rc := d.ReorderingVsComposition()
		fmt.Fprintln(w, report.Reordering(rc))
		export("reordering.csv", report.ReorderingCSV(rc))
		bins, fit := d.DistanceDecay(geo.StudyDataset(), "local")
		fmt.Fprintln(w, report.DistanceDecay(bins, fit))
		export("distance_decay.csv", report.DistanceDecayCSV(bins))
		svg("distance_decay.svg", report.DistanceDecaySVG(bins))
	}

	if opts.CSVDir != "" {
		if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
			return err
		}
	}
	for _, fn := range exports {
		if err := fn(); err != nil {
			return err
		}
	}
	if opts.HTMLPath != "" {
		doc, err := report.RenderHTML(report.BuildHTMLReport(d, geo.StudyDataset()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.HTMLPath, []byte(doc), 0o644); err != nil {
			return err
		}
	}
	return nil
}
