// Command analyze computes the paper's tables and figures from a stored
// crawl (cmd/crawl's JSONL output).
//
//	analyze -in campaign.jsonl                 # print every figure + scorecard
//	analyze -in campaign.jsonl -figure 5       # one figure
//	analyze -in campaign.jsonl -csv out/       # also export CSVs
//	analyze -in campaign.jsonl -extended       # + clusters, domain bias, distance decay
package main

import (
	"flag"
	"os"

	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.StringVar(&opts.In, "in", "campaign.jsonl", "input JSONL path")
	flag.IntVar(&opts.Figure, "figure", 0, "figure number to print (0 = all)")
	flag.StringVar(&opts.CSVDir, "csv", "", "directory to export CSV tables into")
	flag.StringVar(&opts.SVGDir, "svg", "", "directory to export SVG figure images into")
	flag.StringVar(&opts.HTMLPath, "html", "", "write a single self-contained HTML report to this path")
	flag.BoolVar(&opts.Extended, "extended", false, "also run the §5 follow-up analyses (clusters, domain bias, distance decay)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	if err := runAnalyze(opts, os.Stdout); err != nil {
		telemetry.NewLogger(os.Stderr, *logFormat).Error("analyze failed", "err", err)
		os.Exit(1)
	}
}
