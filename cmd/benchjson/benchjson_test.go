package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: geoserp/internal/telemetry
cpu: Example CPU @ 2.40GHz
BenchmarkSpan-8          	 3607344	       330.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkSpanWithSnapshot-8	   21212	     56011 ns/op	   98304 B/op	       3 allocs/op
BenchmarkHash/short-8    	12345678	        95.2 ns/op	     210.5 MB/s
PASS
ok  	geoserp/internal/telemetry	4.5s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	span := got["BenchmarkSpan"]
	if span.Iterations != 3607344 || span.NsPerOp != 330.6 || span.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkSpan = %+v", span)
	}
	snap := got["BenchmarkSpanWithSnapshot"]
	if snap.BytesPerOp != 98304 || snap.AllocsPerOp != 3 {
		t.Fatalf("BenchmarkSpanWithSnapshot = %+v", snap)
	}
	// Sub-benchmark names keep their path; only -GOMAXPROCS is stripped.
	hash := got["BenchmarkHash/short"]
	if hash.MBPerSec != 210.5 {
		t.Fatalf("BenchmarkHash/short = %+v", hash)
	}
}

func TestParseBenchRejectsGarbageValues(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX-8 100 abc ns/op\n"))
	if err == nil {
		t.Fatal("garbage value accepted")
	}
}

func TestWriteBenchJSONStableAndSorted(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := writeBenchJSON(&a, results); err != nil {
		t.Fatal(err)
	}
	if err := writeBenchJSON(&b, results); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("output not deterministic")
	}
	out := a.String()
	if strings.Index(out, "BenchmarkHash/short") > strings.Index(out, "BenchmarkSpan") {
		t.Fatalf("keys not sorted:\n%s", out)
	}
	if !strings.Contains(out, `"ns_per_op":330.6`) {
		t.Fatalf("missing ns_per_op:\n%s", out)
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Fatal("missing trailing newline")
	}
}

func TestNormalizeBenchName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSpan-8":        "BenchmarkSpan",
		"BenchmarkSpan":          "BenchmarkSpan",
		"BenchmarkHash/short-16": "BenchmarkHash/short",
		"BenchmarkOdd-name":      "BenchmarkOdd-name", // suffix not numeric
	} {
		if got := normalizeBenchName(in); got != want {
			t.Fatalf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}
