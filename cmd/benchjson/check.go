package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// checkOptions tune the benchmark regression gate. The default gate
// reads only allocs/op and B/op — both machine-independent, so a
// committed baseline stays valid across laptops and CI runners —
// while wall-time (ns/op) gating is opt-in for same-hardware setups.
type checkOptions struct {
	// Tolerance is the multiplicative headroom: a current measurement may
	// exceed its baseline by this fraction before the gate trips.
	Tolerance float64
	// AllocSlack and ByteSlack are absolute allowances added on top of
	// the multiplicative headroom, so near-zero baselines don't make the
	// gate hair-trigger (2 → 3 allocs/op is slack, not a 50% regression).
	AllocSlack float64
	ByteSlack  float64
	// CheckNs additionally gates ns/op with NsTolerance, meaningful only
	// when baseline and run share comparable hardware.
	CheckNs     bool
	NsTolerance float64
}

// readBaseline loads a benchjson document written by writeBenchJSON.
func readBaseline(path string) (map[string]BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: baseline: %w", err)
	}
	var out map[string]BenchResult
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchjson: baseline %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: baseline %s is empty", path)
	}
	return out, nil
}

// checkBench compares a run against the baseline and returns one message
// per violated bound, sorted by benchmark name. A benchmark present in
// the baseline but absent from the run is itself a violation — a renamed
// or deleted benchmark must regenerate the baseline, not silently escape
// the gate. Benchmarks new in the run pass freely.
func checkBench(baseline, current map[string]BenchResult, opts checkOptions) []string {
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	exceeds := func(cur, base, tol, slack float64) bool {
		return cur > base*(1+tol)+slack
	}
	var bad []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline but missing from this run (renamed or deleted? regenerate with `make bench-json`)", name))
			continue
		}
		if exceeds(cur.AllocsPerOp, base.AllocsPerOp, opts.Tolerance, opts.AllocSlack) {
			bad = append(bad, fmt.Sprintf("%s: allocs/op regressed: %.1f vs baseline %.1f (tolerance +%.0f%% +%.0f)",
				name, cur.AllocsPerOp, base.AllocsPerOp, opts.Tolerance*100, opts.AllocSlack))
		}
		if exceeds(cur.BytesPerOp, base.BytesPerOp, opts.Tolerance, opts.ByteSlack) {
			bad = append(bad, fmt.Sprintf("%s: B/op regressed: %.0f vs baseline %.0f (tolerance +%.0f%% +%.0f)",
				name, cur.BytesPerOp, base.BytesPerOp, opts.Tolerance*100, opts.ByteSlack))
		}
		if opts.CheckNs && exceeds(cur.NsPerOp, base.NsPerOp, opts.NsTolerance, 0) {
			bad = append(bad, fmt.Sprintf("%s: ns/op regressed: %.0f vs baseline %.0f (tolerance +%.0f%%)",
				name, cur.NsPerOp, base.NsPerOp, opts.NsTolerance*100))
		}
	}
	return bad
}
