package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed measurements. Fields mirror the
// units testing.B reports; metrics the run did not emit are zero.
type BenchResult struct {
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation (-benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MBPerSec is throughput, when the benchmark calls b.SetBytes.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
}

// parseBench reads `go test -bench` output and returns name → result.
// Benchmark names are normalized by stripping the -GOMAXPROCS suffix
// ("BenchmarkSpan-8" → "BenchmarkSpan") so the JSON keys are stable
// across machines; sub-benchmark paths are kept intact. Non-benchmark
// lines (PASS, ok, goos/goarch headers) are ignored. A benchmark that
// appears more than once (e.g. -count>1) keeps its last measurement.
func parseBench(r io.Reader) (map[string]BenchResult, error) {
	out := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: name, iterations, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a test named Benchmark*, not a measurement line
		}
		res := BenchResult{Iterations: iters}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "MB/s":
				res.MBPerSec = v
			}
		}
		out[normalizeBenchName(fields[0])] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	return out, nil
}

// normalizeBenchName strips the trailing -GOMAXPROCS from a benchmark
// name, leaving sub-benchmark path segments untouched.
func normalizeBenchName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// writeBenchJSON renders the results with sorted keys and a trailing
// newline — stable output for diffing successive CI runs.
func writeBenchJSON(w io.Writer, results map[string]BenchResult) error {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	// encoding/json sorts map keys too, but building the document by
	// hand keeps per-entry indentation under our control.
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		entry, err := json.Marshal(results[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", n, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
