// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping benchmark name → measurements, for machine
// consumption (CI trend tracking, regression gates).
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_core.json
//	benchjson -in bench_output.txt -out BENCH_core.json
//
// Names are normalized by stripping the -GOMAXPROCS suffix so keys are
// stable across machines; keys are sorted so successive runs diff
// cleanly. `make bench-json` wires this into the repo's workflow.
//
// With -check it becomes a regression gate instead: the parsed run is
// compared against a committed baseline and the process exits non-zero
// when any benchmark's allocs/op or B/op exceeds the baseline beyond
// tolerance. Allocation metrics are deterministic per code version, so
// the gate holds across machines; ns/op gating is opt-in via -check-ns:
//
//	benchjson -in bench_output.txt -check BENCH_core.json
//
// `make bench-check` wires this into CI.
package main

import (
	"fmt"
	"io"
	"os"

	"flag"
)

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON output path (default: stdout)")
	check := flag.String("check", "", "baseline JSON to gate this run against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.25, "fractional headroom over baseline allocs/op and B/op")
	allocSlack := flag.Float64("alloc-slack", 8, "absolute allocs/op allowance on top of -tolerance")
	byteSlack := flag.Float64("byte-slack", 2048, "absolute B/op allowance on top of -tolerance")
	checkNs := flag.Bool("check-ns", false, "also gate ns/op (requires hardware comparable to the baseline's)")
	nsTolerance := flag.Float64("ns-tolerance", 0.5, "fractional ns/op headroom when -check-ns is set")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in input"))
	}
	if *check != "" {
		baseline, err := readBaseline(*check)
		if err != nil {
			fatal(err)
		}
		if bad := checkBench(baseline, results, checkOptions{
			Tolerance:   *tolerance,
			AllocSlack:  *allocSlack,
			ByteSlack:   *byteSlack,
			CheckNs:     *checkNs,
			NsTolerance: *nsTolerance,
		}); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) against %s:\n", len(bad), *check)
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "  - %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within baseline bounds (%s)\n", len(results), *check)
		if *out == "" {
			return
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := writeBenchJSON(w, results); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
