// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping benchmark name → measurements, for machine
// consumption (CI trend tracking, regression gates).
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_core.json
//	benchjson -in bench_output.txt -out BENCH_core.json
//
// Names are normalized by stripping the -GOMAXPROCS suffix so keys are
// stable across machines; keys are sorted so successive runs diff
// cleanly. `make bench-json` wires this into the repo's workflow.
package main

import (
	"fmt"
	"io"
	"os"

	"flag"
)

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON output path (default: stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines in input"))
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := writeBenchJSON(w, results); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
