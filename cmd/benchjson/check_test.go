package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateOpts() checkOptions {
	return checkOptions{Tolerance: 0.25, AllocSlack: 8, ByteSlack: 2048}
}

func TestCheckBenchWithinBounds(t *testing.T) {
	baseline := map[string]BenchResult{
		"BenchmarkA": {AllocsPerOp: 100, BytesPerOp: 10000, NsPerOp: 500},
		"BenchmarkB": {AllocsPerOp: 2, BytesPerOp: 64, NsPerOp: 50},
	}
	current := map[string]BenchResult{
		// +25% tolerance admits 125; slack admits tiny jumps on tiny bases.
		"BenchmarkA":        {AllocsPerOp: 120, BytesPerOp: 12000, NsPerOp: 9999},
		"BenchmarkB":        {AllocsPerOp: 3, BytesPerOp: 80, NsPerOp: 9999},
		"BenchmarkNewcomer": {AllocsPerOp: 1 << 20}, // new benchmarks pass freely
	}
	if bad := checkBench(baseline, current, gateOpts()); len(bad) != 0 {
		t.Fatalf("violations on a healthy run: %v", bad)
	}
}

func TestCheckBenchFlagsAllocRegression(t *testing.T) {
	baseline := map[string]BenchResult{"BenchmarkA": {AllocsPerOp: 100, BytesPerOp: 1000}}
	current := map[string]BenchResult{"BenchmarkA": {AllocsPerOp: 200, BytesPerOp: 1000}}
	bad := checkBench(baseline, current, gateOpts())
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("violations = %v, want one allocs/op message", bad)
	}
}

func TestCheckBenchFlagsByteRegression(t *testing.T) {
	baseline := map[string]BenchResult{"BenchmarkA": {AllocsPerOp: 10, BytesPerOp: 100000}}
	current := map[string]BenchResult{"BenchmarkA": {AllocsPerOp: 10, BytesPerOp: 200000}}
	bad := checkBench(baseline, current, gateOpts())
	if len(bad) != 1 || !strings.Contains(bad[0], "B/op") {
		t.Fatalf("violations = %v, want one B/op message", bad)
	}
}

func TestCheckBenchFlagsMissingBenchmark(t *testing.T) {
	baseline := map[string]BenchResult{"BenchmarkGone": {AllocsPerOp: 1}}
	bad := checkBench(baseline, map[string]BenchResult{"BenchmarkOther": {}}, gateOpts())
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("violations = %v, want one missing-benchmark message", bad)
	}
}

func TestCheckBenchNsOptIn(t *testing.T) {
	baseline := map[string]BenchResult{"BenchmarkA": {NsPerOp: 100}}
	current := map[string]BenchResult{"BenchmarkA": {NsPerOp: 1000}}
	if bad := checkBench(baseline, current, gateOpts()); len(bad) != 0 {
		t.Fatalf("ns/op gated without opt-in: %v", bad)
	}
	opts := gateOpts()
	opts.CheckNs, opts.NsTolerance = true, 0.5
	bad := checkBench(baseline, current, opts)
	if len(bad) != 1 || !strings.Contains(bad[0], "ns/op") {
		t.Fatalf("violations = %v, want one ns/op message", bad)
	}
}

func TestCheckBenchViolationsSortedByName(t *testing.T) {
	baseline := map[string]BenchResult{
		"BenchmarkZ": {AllocsPerOp: 1},
		"BenchmarkA": {AllocsPerOp: 1},
	}
	current := map[string]BenchResult{
		"BenchmarkZ": {AllocsPerOp: 1000},
		"BenchmarkA": {AllocsPerOp: 1000},
	}
	bad := checkBench(baseline, current, gateOpts())
	if len(bad) != 2 || !strings.HasPrefix(bad[0], "BenchmarkA") || !strings.HasPrefix(bad[1], "BenchmarkZ") {
		t.Fatalf("violations not name-sorted: %v", bad)
	}
}

func TestReadBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	results := map[string]BenchResult{
		"BenchmarkA": {Iterations: 10, NsPerOp: 1.5, BytesPerOp: 32, AllocsPerOp: 2},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBenchJSON(f, results); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkA"] != results["BenchmarkA"] {
		t.Fatalf("round trip: %+v vs %+v", got["BenchmarkA"], results["BenchmarkA"])
	}
}

func TestReadBaselineErrors(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(empty); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
