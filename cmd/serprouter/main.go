// Command serprouter runs the SERP cluster coordinator: a full serpd front
// end whose web vertical is retrieved from N document-partitioned shard
// nodes (serpd -shard-count/-shard-id) by concurrent scatter-gather,
// merged deterministically so a same-seed cluster serves byte-identical
// pages to a monolithic serpd at any shard count.
//
// Usage:
//
//	serprouter -shards http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	    [-replicas 1] [-addr 127.0.0.1:8080] [-seed 1] [-datacenters 3]
//	    [-shard-timeout 2s] [-breaker-threshold 3] [-breaker-cooldown 45s]
//	    [-hedge-after 0] [-probe-interval 45s]
//	    [-max-inflight 0] [-queue-depth 0] [-admission-service-time 1s]
//	    [-verbose] [-log-format text|json] [-pprof-addr 127.0.0.1:6060]
//
// Every node of one cluster — router and shards — must share -seed (and
// -ring-replicas, when overridden): the shards regenerate the identical
// deterministic corpus from it, and the router's engine personalizes over
// the same world.
//
// Degradation is graded: with -replicas R > 1 each shard leg fails over
// deterministically across its replica set (and optionally hedges
// stragglers with -hedge-after), so a shard only narrows the web vertical
// — the page is still served, marked with the X-Serp-Partial header —
// when EVERY replica of that shard sheds, times out, errors, or sits
// behind an open circuit breaker; only when no shard answers at all does
// /search shed with 503. A background -probe-interval /healthz loop
// re-admits recovered replicas.
//
// Endpoints are serpd's: /search, /healthz, /statz, /metricsz, /tracez,
// /spanz. The scatter-gather layer adds router_* metrics (per-shard
// outcomes, partial results, breaker transitions) to /metricsz, and the
// coordinator additionally serves /clustertracez — cross-process traces
// stitched from its own span ring plus every shard's /spanz export, with
// critical-path attribution (straggler shard, fan-out wait, breaker and
// shed accounting) per trace. -wide-events adds the canonical request
// log: one structured line per /search carrying the whole request story.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&opts.Shards, "shards", "", "comma-separated shard base URLs, in shard-ID order, replicas adjacent (required)")
	flag.IntVar(&opts.Replicas, "replicas", 1, "replicas per shard: how many consecutive -shards URLs form one shard's replica set")
	flag.Uint64Var(&opts.Seed, "seed", 1, "root seed for the synthetic web and noise (must match the shards')")
	flag.IntVar(&opts.Datacenters, "datacenters", 3, "number of replica datacenters")
	flag.IntVar(&opts.Buckets, "buckets", 8, "number of A/B experiment buckets")
	flag.IntVar(&opts.RateBurst, "rate-burst", 30, "per-IP rate limit burst")
	flag.Float64Var(&opts.RatePerMin, "rate-per-minute", 10, "per-IP sustained requests per minute")
	flag.BoolVar(&opts.Quiet, "quiet", false, "disable all noise mechanisms (deterministic serving)")
	flag.StringVar(&opts.CorpusPath, "corpus", "", "custom query corpus JSON (default: the study's 240 terms)")
	flag.StringVar(&opts.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (off when empty)")
	flag.DurationVar(&opts.ShardTimeout, "shard-timeout", 2*time.Second, "per-shard fan-out timeout (0 disables)")
	flag.IntVar(&opts.BreakerThreshold, "breaker-threshold", 3, "consecutive shard failures that open its circuit breaker (0 disables breakers)")
	flag.DurationVar(&opts.BreakerCooldown, "breaker-cooldown", 45*time.Second, "open-breaker dwell before a half-open probe")
	flag.DurationVar(&opts.HedgeAfter, "hedge-after", 0, "fire a hedged backup request to another replica after this in-flight delay (0 disables hedging)")
	flag.DurationVar(&opts.ProbeInterval, "probe-interval", 45*time.Second, "background /healthz probe cadence re-admitting recovered replicas (0 disables)")
	flag.IntVar(&opts.Admission.MaxInflight, "max-inflight", 0, "max concurrent /search requests admitted (0 disables admission control)")
	flag.IntVar(&opts.Admission.QueueDepth, "queue-depth", 0, "how many /search requests may queue for an admission slot")
	flag.DurationVar(&opts.Admission.ServiceTime, "admission-service-time", time.Second, "per-request service-time estimate behind Retry-After hints")
	flag.IntVar(&opts.TracezCapacity, "tracez-capacity", telemetry.DefaultSpanCapacity, "span ring capacity behind GET /tracez (0 disables tracing)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("verbose", false, "log every request")
	wideEvents := flag.Bool("wide-events", false, "emit one wide-event request log line per /search")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, *logFormat)
	if *verbose {
		opts.Logger = logger
	}
	if *wideEvents {
		opts.WideLogger = logger
	}

	srv, eng, client, err := buildServer(opts)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	stopProber := client.StartProber()
	defer stopProber()
	logger.Info("routing sharded search",
		"url", srv.URL(), "seed", opts.Seed, "shards", client.Shards(),
		"replicas", max(opts.Replicas, 1))
	logger.Info("endpoints ready",
		"try", srv.URL()+"/search?q=Coffee&ll=41.4993,-81.6944",
		"metrics", srv.URL()+"/metricsz")

	if opts.PprofAddr != "" {
		pprofSrv, pprofAddr, perr := startPprof(opts.PprofAddr)
		if perr != nil {
			logger.Error("pprof startup failed", "err", perr)
			os.Exit(1)
		}
		defer pprofSrv.Close()
		logger.Info("pprof enabled", "addr", "http://"+pprofAddr+"/debug/pprof/")
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if err := srv.Serve(); err != nil {
			logger.Error("serve", "err", err)
		}
	}()
	<-done
	fmt.Fprintln(os.Stderr)
	logger.Info("shutting down",
		"served", eng.Served(), "rate_limited", eng.RateLimited(),
		"breakers", fmt.Sprint(client.BreakerStates()))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}
