package main

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"testing"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/router"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
)

// startShard boots one real shard node (the same construction cmd/serpd's
// shard mode performs) on a loopback port.
func startShard(t *testing.T, seed uint64, id, count int) *serpserver.Server {
	t.Helper()
	view := router.BuildShardIndex(seed, nil, id, count, 0)
	sh := router.NewShardHandler(id, view)
	srv, err := serpserver.Listen("127.0.0.1:0", sh)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv
}

func get(t *testing.T, url, trace string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 5.1) Mobile")
	if trace != "" {
		req.Header.Set(httpheader.TraceID, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

// TestRouterOverRealSockets boots two shard serpd nodes and a serprouter
// over real loopback sockets and checks the routed page is byte-identical
// to a monolithic engine's — the full cmd-layer version of the cluster
// equality the internal/router tests prove in-process.
func TestRouterOverRealSockets(t *testing.T) {
	const seed = 7
	s0 := startShard(t, seed, 0, 2)
	s1 := startShard(t, seed, 1, 2)

	srv, eng, client, err := buildServer(options{
		Addr:       "127.0.0.1:0",
		Shards:     s0.URL() + "," + s1.URL(),
		Seed:       seed,
		RateBurst:  1000,
		RatePerMin: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	if client.Shards() != 2 {
		t.Fatalf("client shards = %d", client.Shards())
	}

	// Monolithic reference with the identical engine shape.
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	cfg.RateBurst = 1000
	cfg.RatePerMinute = 100000
	mono := serpserver.NewHandler(engine.NewCustom(cfg, simclock.Wall()))
	monoSrv, err := serpserver.Listen("127.0.0.1:0", mono)
	if err != nil {
		t.Fatal(err)
	}
	monoSrv.Start()
	defer monoSrv.Shutdown(context.Background())

	const q = "/search?q=coffee+shop&ll=41.4993,-81.6944&format=json"
	resp, routed := get(t, srv.URL()+q, "trace-eq")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router status = %d: %s", resp.StatusCode, routed)
	}
	if resp.Header.Get(httpheader.SerpPartial) != "" {
		t.Fatal("healthy cluster served a partial page")
	}
	_, want := get(t, monoSrv.URL()+q, "trace-eq")
	if routed != want {
		t.Fatalf("routed page differs from monolith\nrouted:   %s\nmonolith: %s", routed, want)
	}
	if eng.Served() == 0 {
		t.Fatal("engine served counter not incremented")
	}

	// Kill shard 1: pages degrade to partial 200s, never errors.
	s1.Shutdown(context.Background())
	resp, body := get(t, srv.URL()+q, "trace-degraded")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(httpheader.SerpPartial) != "web" {
		t.Fatalf("degraded page not marked partial (header %q)", resp.Header.Get(httpheader.SerpPartial))
	}

	// Kill shard 0 too: nothing left to answer from, so /search sheds.
	s0.Shutdown(context.Background())
	resp, _ = get(t, srv.URL()+q, "trace-down")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-shards-down status = %d, want 503", resp.StatusCode)
	}
}

func TestSplitShards(t *testing.T) {
	got, err := splitShards(" http://a:1 , http://b:2/ ,")
	if err != nil || len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitShards = %v, %v", got, err)
	}
	for _, bad := range []string{"", "  ,  ", "ftp://a:1", "a:1"} {
		if _, err := splitShards(bad); err == nil {
			t.Fatalf("splitShards(%q) accepted", bad)
		}
	}
}

func TestBuildServerRequiresShards(t *testing.T) {
	if _, _, _, err := buildServer(options{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing -shards accepted")
	}
}

// TestShardCountMismatch documents the failure mode of a misconfigured
// topology: a router pointed at a shard that believes it is part of a
// different partition still serves (the shard answers honestly), but the
// shard IDs must line up — a shard answering with the wrong ID is treated
// as an error, degrading the page rather than corrupting the merge.
func TestShardCountMismatch(t *testing.T) {
	const seed = 7
	// Shard claims ID 1, but the router will address it as shard 0.
	wrong := startShard(t, seed, 1, 2)
	srv, _, _, err := buildServer(options{
		Addr:       "127.0.0.1:0",
		Shards:     wrong.URL(),
		Seed:       seed,
		RateBurst:  1000,
		RatePerMin: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	resp, _ := get(t, srv.URL()+"/search?q=coffee&format=json", "t-"+strconv.Itoa(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("misrouted-only cluster: status %d, want 503", resp.StatusCode)
	}
}
