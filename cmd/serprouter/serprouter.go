package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/queries"
	"geoserp/internal/router"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// options collects the serprouter command's inputs.
type options struct {
	Addr string
	// Shards is the comma-separated list of shard base URLs, in shard-ID
	// order ("http://127.0.0.1:9001,http://127.0.0.1:9002"). The order
	// must match the -shard-id assignment the shard serpd processes were
	// started with, and every node must share -seed. With -replicas R > 1
	// the list holds R consecutive URLs per shard, replicas adjacent in
	// replica-ID order (s0r0,s0r1,s1r0,s1r1,…).
	Shards string
	// Replicas is how many consecutive URLs of -shards form one shard's
	// replica set (<= 0 means 1: every URL is its own shard).
	Replicas int
	Seed     uint64
	// Engine shape (the coordinator runs the full engine minus the local
	// index: Places, News, personalization, noise, rate limiting).
	Datacenters int
	Buckets     int
	RateBurst   int
	RatePerMin  float64
	Quiet       bool
	CorpusPath  string
	Logger      *slog.Logger
	// WideLogger, when set, receives one wide-event "search.wide" record
	// per /search — the canonical request log (stage durations, per-shard
	// outcomes, partial flag, trace ID) on a single structured line.
	WideLogger *slog.Logger
	PprofAddr  string
	// Admission configures the router's own /search concurrency gate.
	Admission serpserver.AdmissionConfig
	// TracezCapacity bounds the span ring behind GET /tracez (<=0
	// disables request tracing and the endpoint).
	TracezCapacity int
	// ShardTimeout bounds one shard fan-out request; <= 0 disables the
	// per-shard timeout.
	ShardTimeout time.Duration
	// BreakerThreshold / BreakerCooldown configure the per-replica circuit
	// breakers (threshold <= 0 disables them).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter, when > 0, fires a hedged backup request to another
	// healthy replica after a leg's primary attempt has been in flight
	// this long (first answer wins, the loser is cancelled).
	HedgeAfter time.Duration
	// ProbeInterval is the background /healthz probe cadence that
	// re-admits recovered replicas whose breakers are open (<= 0 disables
	// the prober).
	ProbeInterval time.Duration
}

// splitShards parses the -shards list.
func splitShards(s string) ([]string, error) {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("shard URL %q: must start with http:// or https://", u)
		}
		out = append(out, strings.TrimRight(u, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard URLs given (-shards)")
	}
	return out, nil
}

// groupReplicas slices the flat -shards URL list into per-shard replica
// sets: replicas are adjacent, so with -replicas 2 the list
// s0r0,s0r1,s1r0,s1r1 yields [[s0r0 s0r1] [s1r0 s1r1]].
func groupReplicas(flat []string, replicas int) ([][]string, error) {
	if replicas <= 0 {
		replicas = 1
	}
	if len(flat)%replicas != 0 {
		return nil, fmt.Errorf("-shards lists %d URLs, not divisible into replica sets of %d (-replicas)", len(flat), replicas)
	}
	out := make([][]string, 0, len(flat)/replicas)
	for i := 0; i < len(flat); i += replicas {
		out = append(out, flat[i:i+replicas])
	}
	return out, nil
}

// buildServer constructs the coordinator: a scatter-gather client over the
// shard URLs, a full engine using it as the retrieval backend, and the
// standard serpd HTTP front end (so crawlers cannot tell a router from a
// monolith except via the X-Serp-Partial degradation marker).
func buildServer(opts options) (*serpserver.Server, *engine.Engine, *router.Client, error) {
	flat, err := splitShards(opts.Shards)
	if err != nil {
		return nil, nil, nil, err
	}
	shards, err := groupReplicas(flat, opts.Replicas)
	if err != nil {
		return nil, nil, nil, err
	}

	cfg := engine.DefaultConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Datacenters > 0 {
		cfg.Datacenters = opts.Datacenters
	}
	if opts.Buckets > 0 {
		cfg.Buckets = opts.Buckets
	}
	if opts.RateBurst > 0 {
		cfg.RateBurst = opts.RateBurst
	}
	if opts.RatePerMin > 0 {
		cfg.RatePerMinute = opts.RatePerMin
	}
	if opts.Quiet {
		cfg.WebJitterSigma = 0
		cfg.PlaceJitterSigma = 0
		cfg.NewsJitterSigma = 0
		cfg.Buckets = 1
		cfg.BucketWeightSpread = 0
		cfg.ReplicaSkew = 0
	}

	reg := telemetry.NewRegistry()
	client := router.NewClient(router.ClientConfig{
		Shards:           shards,
		Timeout:          opts.ShardTimeout,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
		HedgeAfter:       opts.HedgeAfter,
		ProbeInterval:    opts.ProbeInterval,
	}, reg)

	eopts := []engine.Option{engine.WithTelemetry(reg), engine.WithRetriever(client)}
	if opts.CorpusPath != "" {
		corpus, cerr := queries.LoadCorpus(opts.CorpusPath)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		eopts = append(eopts, engine.WithCorpus(corpus))
	}
	eng := engine.NewCustom(cfg, simclock.Wall(), eopts...)

	hopts := []serpserver.HandlerOption{serpserver.WithNode("router")}
	if opts.Logger != nil {
		hopts = append(hopts, serpserver.WithLogger(opts.Logger))
	}
	if opts.WideLogger != nil {
		hopts = append(hopts, serpserver.WithWideEvents(opts.WideLogger))
	}
	var spans *telemetry.SpanRecorder
	if opts.TracezCapacity > 0 {
		spans = telemetry.NewSpanRecorder(opts.TracezCapacity, simclock.Wall())
		hopts = append(hopts, serpserver.WithSpans(spans))
	}
	handler := serpserver.NewHandler(eng, hopts...)
	var root http.Handler = handler
	if opts.Admission.Enabled() {
		root = serpserver.WithAdmission(opts.Admission, handler, root)
	}
	// The cluster trace surface sits outside the admission gate: it must
	// answer while /search sheds, exactly when stitched traces matter most.
	mux := http.NewServeMux()
	mux.Handle("GET "+router.ClusterTracezPath, router.NewClusterTracez(spans, client))
	mux.Handle("/", root)
	root = mux
	srv, err := serpserver.Listen(opts.Addr, root)
	if err != nil {
		return nil, nil, nil, err
	}
	return srv, eng, client, nil
}

// startPprof binds addr and serves the net/http/pprof endpoints on it in
// the background, returning the server for shutdown. Profiling gets its
// own listener so it never shares a port with production traffic.
func startPprof(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pprof: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: telemetry.PprofMux()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
