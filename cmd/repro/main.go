// Command repro reproduces the paper end-to-end: it runs the full
// measurement campaign (or a scaled one) against the synthetic engine
// under virtual time, then prints every table and figure plus the
// validation and demographics experiments and a fidelity scorecard.
//
//	repro                      # scaled campaign (12 terms/category × 3 days) — seconds
//	repro -full                # the paper's full 240 × 59 × 5-day campaign — minutes
//	repro -figure 5            # run + print one figure
//	repro -experiment validation
//	repro -experiment demographics
//	repro -extended            # + clusters, domain bias, distance decay
//	repro -save campaign.jsonl # also persist the raw observations
//	repro -trace-out trace.json # + the campaign timeline for Perfetto;
//	                            # virtual-clock spans make the file
//	                            # byte-identical across same-seed runs
package main

import (
	"flag"
	"os"

	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.BoolVar(&opts.Full, "full", false, "run the paper's full campaign (240 terms, 5 days)")
	flag.IntVar(&opts.TermsPerCategory, "terms", 12, "terms per category when not -full")
	flag.IntVar(&opts.Days, "days", 3, "days per phase when not -full")
	flag.IntVar(&opts.Figure, "figure", 0, "only this figure (0 = everything)")
	flag.IntVar(&opts.Table, "table", 0, "only this table (1 = Table 1)")
	flag.StringVar(&opts.Experiment, "experiment", "", "only this experiment: validation | demographics")
	flag.StringVar(&opts.Save, "save", "", "also write raw observations to this JSONL path")
	flag.Uint64Var(&opts.Seed, "seed", 1, "engine seed")
	flag.BoolVar(&opts.Extended, "extended", false, "also run the §5 follow-up analyses (clusters, domain bias, distance decay)")
	flag.IntVar(&opts.Validators, "validators", 50, "vantage machines for the validation experiment")
	flag.StringVar(&opts.TraceOut, "trace-out", "", "write the campaign timeline as Chrome trace-event JSON (byte-identical across same-seed runs)")
	flag.IntVar(&opts.TraceCapacity, "trace-capacity", 0, "span ring capacity for -trace-out (0 = campaign-sized default)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, *logFormat)
	opts.Logger = logger

	if err := runRepro(opts, os.Stdout); err != nil {
		logger.Error("repro failed", "err", err)
		os.Exit(1)
	}
}
