package main

import (
	"fmt"
	"io"
	"log/slog"
	"os"

	"geoserp"

	"geoserp/internal/analysis"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/report"
	"geoserp/internal/storage"
)

// options collects the repro command's inputs.
type options struct {
	// Full runs the paper's complete campaign.
	Full bool
	// TermsPerCategory / Days scale the campaign when !Full.
	TermsPerCategory int
	Days             int
	// Figure restricts output to one figure (0 = everything).
	Figure int
	// Table restricts output to one table (1 = Table 1).
	Table int
	// Experiment restricts to "validation" or "demographics".
	Experiment string
	// Save persists raw observations to this path ("" = discard).
	Save string
	// Seed is the engine seed.
	Seed uint64
	// Extended also runs the §5 follow-up analyses.
	Extended bool
	// Validators is the vantage count for the validation experiment.
	Validators int
	// TraceOut, when set, writes the campaign timeline (campaign, phase,
	// sweep, fetch-attempt, server, and engine-stage spans) as a Chrome
	// trace-event JSON file. Spans are timed on the study's virtual
	// clock, so the file is byte-identical across same-seed runs.
	TraceOut string
	// TraceCapacity bounds the span ring for -trace-out (0 = a
	// campaign-sized default).
	TraceCapacity int
	// Logger receives structured progress records on stderr (nil =
	// silent). The report artifacts on w are unaffected: telemetry never
	// touches stdout, so repro output stays byte-for-byte deterministic.
	Logger *slog.Logger
}

// runRepro reproduces the paper, writing every artifact to w.
func runRepro(opts options, w io.Writer) error {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if opts.Validators <= 0 {
		opts.Validators = 50
	}
	if opts.Table != 0 && opts.Table != 1 {
		return fmt.Errorf("repro: the paper has one table (Table 1); got -table=%d", opts.Table)
	}

	cfg := geoserp.DefaultStudyConfig()
	if opts.Seed != 0 {
		cfg.Engine.Seed = opts.Seed
	}
	if opts.TraceOut != "" {
		cfg.TraceCapacity = opts.TraceCapacity
		if cfg.TraceCapacity <= 0 {
			cfg.TraceCapacity = 1 << 17
		}
	}
	study, err := geoserp.NewStudy(cfg)
	if err != nil {
		return err
	}
	defer study.Close()
	if opts.TraceOut != "" {
		// Written on every exit path — a -figure or -experiment run still
		// leaves a (smaller) timeline behind.
		defer func() {
			if werr := writeTraceFile(opts.TraceOut, study.Spans); werr != nil {
				logger.Error("trace write failed", "err", werr)
			} else {
				logger.Info("campaign trace written",
					"path", opts.TraceOut, "spans", study.Spans.Len())
			}
		}()
	}

	if opts.Table == 1 && opts.Figure == 0 && opts.Experiment == "" {
		fmt.Fprintln(w, report.Table1(geoserp.Table1Terms()))
		return nil
	}

	if opts.Experiment == "validation" || opts.Experiment == "" && opts.Figure == 0 {
		terms := geoserp.StudyCorpus().Category(queries.Controversial)
		if !opts.Full && opts.TermsPerCategory > 0 && len(terms) > opts.TermsPerCategory {
			terms = terms[:opts.TermsPerCategory]
		}
		res, err := study.RunValidation(terms, geoserp.Point{Lat: 41.4993, Lon: -81.6944}, opts.Validators)
		if err != nil {
			return fmt.Errorf("repro: validation: %w", err)
		}
		fmt.Fprintln(w, report.Validation(res))
		if opts.Experiment == "validation" {
			return nil
		}
	}

	phases := study.StudyPhases()
	if !opts.Full {
		phases = study.ScaledPhases(opts.TermsPerCategory, opts.Days)
	}
	study.Crawler.Logger = logger
	start := study.Clock.Now()
	obs, err := study.RunPhases(phases)
	if err != nil {
		return fmt.Errorf("repro: campaign: %w", err)
	}
	logger.Info("campaign complete",
		"observations", len(obs),
		// The study runs under virtual time, so this is the simulated
		// campaign schedule (days, not hardware seconds).
		"virtual_elapsed", study.Clock.Now().Sub(start).String())

	if opts.Save != "" {
		if err := storage.SaveJSONL(opts.Save, obs); err != nil {
			return fmt.Errorf("repro: save: %w", err)
		}
		logger.Info("raw observations saved", "path", opts.Save)
	}

	d, err := analysis.NewDataset(obs)
	if err != nil {
		return err
	}

	if opts.Experiment == "demographics" {
		fmt.Fprintln(w, report.Demographics(d.DemographicCorrelations(geo.StudyDataset(), "local")))
		return nil
	}

	show := func(n int) bool { return opts.Figure == 0 || opts.Figure == n }
	if opts.Figure == 0 || opts.Table == 1 {
		fmt.Fprintln(w, report.Table1(geoserp.Table1Terms()))
	}
	if show(2) {
		fmt.Fprintln(w, report.Figure2(d.NoiseByGranularity()))
	}
	if show(3) {
		fmt.Fprintln(w, report.Figure3(d.NoisePerTerm("local")))
	}
	if show(4) {
		fmt.Fprintln(w, report.Figure4(d.NoiseByResultType("local", "county")))
	}
	if show(5) {
		fmt.Fprintln(w, report.Figure5(d.PersonalizationByGranularity()))
	}
	if show(6) {
		fmt.Fprintln(w, report.Figure6(d.PersonalizationPerTerm("local")))
	}
	if show(7) {
		fmt.Fprintln(w, report.Figure7(d.PersonalizationByResultType()))
	}
	if show(8) {
		fmt.Fprintln(w, report.Figure8(d.ConsistencyOverTime("local")))
	}
	if opts.Figure == 0 {
		fmt.Fprintln(w, report.Demographics(d.DemographicCorrelations(geo.StudyDataset(), "local")))
		fmt.Fprintln(w, report.Scorecard(d.Scorecard()))
	}
	if opts.Extended {
		for _, g := range d.Granularities() {
			m := d.LocationSimilarity(g, "local")
			noise := 0.0
			for _, c := range d.NoiseByGranularity() {
				if c.Granularity == g && c.Category == "local" {
					noise = c.Edit.Mean
				}
			}
			threshold := noise * 1.3
			fmt.Fprintln(w, report.Clusters(g, m.Clusters(threshold), threshold))
		}
		fmt.Fprintln(w, report.ScopeBreakdown(d.PoliticianScopeBreakdown(queries.StudyCorpus())))
		fmt.Fprintln(w, report.CommonNames(d.CommonNameAmbiguity(queries.StudyCorpus())))
		fmt.Fprintln(w, report.DomainBias(d.DomainBiasByLocation("state", "local", 0.02), 25))
		fmt.Fprintln(w, report.Reordering(d.ReorderingVsComposition()))
		bins, fit := d.DistanceDecay(geo.StudyDataset(), "local")
		fmt.Fprintln(w, report.DistanceDecay(bins, fit))
	}
	return nil
}

// writeTraceFile dumps the study's recorded spans in Chrome trace-event
// format. Span times come from the virtual clock, so two runs at the
// same seed produce byte-identical files.
func writeTraceFile(path string, spans *geoserp.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("repro: trace out: %w", err)
	}
	if err := geoserp.WriteChromeTrace(f, spans.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("repro: write trace: %w", err)
	}
	return f.Close()
}
