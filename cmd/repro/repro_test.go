package main

import (
	"path/filepath"
	"strings"
	"testing"

	"geoserp/internal/storage"
)

func TestRunReproTable1Only(t *testing.T) {
	var buf strings.Builder
	if err := runRepro(options{Table: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Gay Marriage") {
		t.Fatalf("out = %s", out)
	}
	if strings.Contains(out, "Figure 2") {
		t.Fatal("table-only run printed figures")
	}
}

func TestRunReproBadTable(t *testing.T) {
	var buf strings.Builder
	if err := runRepro(options{Table: 7}, &buf); err == nil {
		t.Fatal("table 7 accepted (the paper has one table)")
	}
}

func TestRunReproValidationOnly(t *testing.T) {
	var buf strings.Builder
	err := runRepro(options{
		Experiment:       "validation",
		TermsPerCategory: 3,
		Validators:       8,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Validation (§2.2)") {
		t.Fatalf("out = %s", out)
	}
	if strings.Contains(out, "Figure") {
		t.Fatal("validation-only run printed figures")
	}
}

func TestRunReproScaledEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	save := filepath.Join(t.TempDir(), "raw.jsonl")
	var buf strings.Builder
	err := runRepro(options{
		TermsPerCategory: 3,
		Days:             1,
		Validators:       6,
		Save:             save,
		Extended:         true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Validation (§2.2)", "Table 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Demographics",
		"Fidelity scorecard", "Location clusters", "Content analysis",
		"Personalization vs distance",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	obs, err := storage.LoadJSONL(save)
	if err != nil {
		t.Fatal(err)
	}
	// (3+3 terms) × 59 × 2 roles + (3 politicians) × 59 × 2 roles, 1 day each.
	if want := 9 * 59 * 2; len(obs) != want {
		t.Fatalf("saved %d observations, want %d", len(obs), want)
	}
}

// TestRunReproIsByteDeterministic is the repro contract: two runs with the
// same seed print byte-identical artifacts. Request noise is keyed on the
// minted trace ID, so goroutine scheduling and request arrival order
// cannot perturb the output.
func TestRunReproIsByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	run := func() string {
		var buf strings.Builder
		err := runRepro(options{
			TermsPerCategory: 2,
			Days:             1,
			Validators:       6,
			Seed:             42,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("outputs diverge at byte %d (line %d)", i, line)
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", len(a), len(b))
	}
	if !strings.Contains(a, "Figure 2") {
		t.Fatal("determinism run produced no figures")
	}
}

func TestRunReproSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	var buf strings.Builder
	err := runRepro(options{TermsPerCategory: 2, Days: 1, Figure: 5}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5:") {
		t.Fatal("Figure 5 missing")
	}
	if strings.Contains(out, "Figure 2:") || strings.Contains(out, "Fidelity") {
		t.Fatal("unrequested artifacts printed")
	}
}
