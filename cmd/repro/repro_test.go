package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoserp/internal/storage"
)

func TestRunReproTable1Only(t *testing.T) {
	var buf strings.Builder
	if err := runRepro(options{Table: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Gay Marriage") {
		t.Fatalf("out = %s", out)
	}
	if strings.Contains(out, "Figure 2") {
		t.Fatal("table-only run printed figures")
	}
}

func TestRunReproBadTable(t *testing.T) {
	var buf strings.Builder
	if err := runRepro(options{Table: 7}, &buf); err == nil {
		t.Fatal("table 7 accepted (the paper has one table)")
	}
}

func TestRunReproValidationOnly(t *testing.T) {
	var buf strings.Builder
	err := runRepro(options{
		Experiment:       "validation",
		TermsPerCategory: 3,
		Validators:       8,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Validation (§2.2)") {
		t.Fatalf("out = %s", out)
	}
	if strings.Contains(out, "Figure") {
		t.Fatal("validation-only run printed figures")
	}
}

func TestRunReproScaledEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	save := filepath.Join(t.TempDir(), "raw.jsonl")
	var buf strings.Builder
	err := runRepro(options{
		TermsPerCategory: 3,
		Days:             1,
		Validators:       6,
		Save:             save,
		Extended:         true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Validation (§2.2)", "Table 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Demographics",
		"Fidelity scorecard", "Location clusters", "Content analysis",
		"Personalization vs distance",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	obs, err := storage.LoadJSONL(save)
	if err != nil {
		t.Fatal(err)
	}
	// (3+3 terms) × 59 × 2 roles + (3 politicians) × 59 × 2 roles, 1 day each.
	if want := 9 * 59 * 2; len(obs) != want {
		t.Fatalf("saved %d observations, want %d", len(obs), want)
	}
}

// TestRunReproIsByteDeterministic is the repro contract: two runs with the
// same seed print byte-identical artifacts. Request noise is keyed on the
// minted trace ID, so goroutine scheduling and request arrival order
// cannot perturb the output.
func TestRunReproIsByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	run := func() string {
		var buf strings.Builder
		err := runRepro(options{
			TermsPerCategory: 2,
			Days:             1,
			Validators:       6,
			Seed:             42,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("outputs diverge at byte %d (line %d)", i, line)
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", len(a), len(b))
	}
	if !strings.Contains(a, "Figure 2") {
		t.Fatal("determinism run produced no figures")
	}
}

func TestRunReproSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	var buf strings.Builder
	err := runRepro(options{TermsPerCategory: 2, Days: 1, Figure: 5}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5:") {
		t.Fatal("Figure 5 missing")
	}
	if strings.Contains(out, "Figure 2:") || strings.Contains(out, "Fidelity") {
		t.Fatal("unrequested artifacts printed")
	}
}

// TestRunReproTraceOutIsByteDeterministic extends the repro contract to
// the -trace-out artifact: spans are timed on the study's virtual clock
// and span IDs are minted from stable keys, so two same-seed runs write
// byte-identical Chrome trace files.
func TestRunReproTraceOutIsByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	run := func(path string) []byte {
		var buf strings.Builder
		err := runRepro(options{
			TermsPerCategory: 2,
			Days:             1,
			Validators:       6,
			Seed:             42,
			TraceOut:         path,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dir := t.TempDir()
	a := run(filepath.Join(dir, "a.json"))
	b := run(filepath.Join(dir, "b.json"))
	if !bytes.Equal(a, b) {
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("trace files diverge at byte %d (line %d)", i, line)
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("trace files differ in length: %d vs %d bytes", len(a), len(b))
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{
		"crawler.campaign", "crawler.phase", "crawler.sweep",
		"crawler.validation", "browser.fetch", "serpd.request",
		"engine.parse", "engine.retrieve", "engine.rerank", "engine.assemble",
	} {
		if !names[want] {
			t.Fatalf("trace has no %q span; span names: %v", want, names)
		}
	}
}
