// Command geoserplint machine-enforces the repo's determinism, clock,
// concurrency, and span invariants — the properties every byte-exactness
// guarantee in this reproduction rests on. It loads every package matching
// the given patterns with full type information and runs the project
// analyzer suite:
//
//	wallclock  time must flow through an injected simclock.Clock
//	detrand    deterministic packages draw randomness from detrand only
//	rngkey     detrand.NewKeyed stream keys are unique across the repo
//	spanend    every started telemetry span is ended on all paths
//	errwrap    retry-classified packages wrap error causes with %w
//	maporder   map iteration feeding an order-sensitive sink must be sorted
//	lockhold   locks are released on all paths and never held across
//	           network I/O, clock sleeps, or blocking channel ops
//	headerkey  X-* header names come from internal/httpheader constants
//	atomicmix  a field accessed via sync/atomic is atomic everywhere
//
// Usage:
//
//	geoserplint [-list] [-format text|json|sarif] [packages]
//
// With no packages, ./... is linted. -format selects the output: text
// (default, file:line:col diagnostics), json (a flat array for
// scripting), or sarif (a SARIF 2.1.0 log for code-scanning uploads; CI
// publishes lint.sarif so findings annotate pull requests). The only
// escape hatch is an explicit annotation on (or directly above) the
// offending line:
//
//	//lint:allow <analyzer> <reason>
//
// and an allow comment that suppresses nothing is itself an error, so
// stale annotations cannot accumulate. Exit status: 0 clean, 1 findings,
// 2 load or usage failure. See docs/LINTING.md for the full invariants.
package main

import (
	"flag"
	"fmt"
	"os"

	"geoserp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: geoserplint [-list] [-format text|json|sarif] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "geoserplint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	diags, err := lint.Run(lint.Options{Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := os.Getwd()
	if err != nil {
		root = ""
	}
	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geoserplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
