// Command geoserplint machine-enforces the repo's determinism, clock, and
// span invariants — the properties every byte-exactness guarantee in this
// reproduction rests on. It loads every package matching the given
// patterns with full type information and runs the project analyzer suite:
//
//	wallclock  time must flow through an injected simclock.Clock
//	detrand    deterministic packages draw randomness from detrand only
//	rngkey     detrand.NewKeyed stream keys are unique across the repo
//	spanend    every started telemetry span is ended on all paths
//	errwrap    retry-classified packages wrap error causes with %w
//
// Usage:
//
//	geoserplint [-list] [packages]
//
// With no packages, ./... is linted. The only escape hatch is an explicit
// annotation on (or directly above) the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// and an allow comment that suppresses nothing is itself an error, so
// stale annotations cannot accumulate. Exit status: 0 clean, 1 findings,
// 2 load or usage failure. See docs/LINTING.md for the full invariants.
package main

import (
	"flag"
	"fmt"
	"os"

	"geoserp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: geoserplint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := lint.Run(lint.Options{Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geoserplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
