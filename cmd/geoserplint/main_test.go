package main

import (
	"os/exec"
	"testing"

	"geoserp/internal/lint"
)

// TestMergedTreeClean is the merge gate in test form: the full analyzer
// suite over the whole module must produce zero diagnostics and zero
// unused allows, exactly as `make lint` / CI require.
func TestMergedTreeClean(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go binary unavailable: %v", err)
	}
	diags, err := lint.Run(lint.Options{Dir: "../.."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
