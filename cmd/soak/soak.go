package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/browser"
	"geoserp/internal/crawler"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/router"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/statz"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// soakOptions parameterize one soak run. The defaults are deliberately
// hostile: a district-granularity sweep throws 30 concurrent fetches at a
// server that admits 4 and queues 8, so every single round overloads the
// gate, while the fault schedule walks through error bursts and latency
// spikes day by day.
type soakOptions struct {
	Seed  uint64
	Terms int           // terms in the soak phase
	Wait  time.Duration // lock-step slot width

	MaxInflight int
	QueueDepth  int
	ServiceTime time.Duration
	// ServiceLatency is a WALL-clock sleep injected into every admitted
	// /search request (via the server's chaos middleware) so requests
	// genuinely occupy their admission slot for a while. Without it the
	// synthetic engine answers in microseconds and a 30-wide burst never
	// overlaps 12-deep in real time, so the gate would never shed. Wall
	// rather than virtual latency on purpose: a handler sleeping on the
	// campaign clock while its clients hold that clock would deadlock
	// the rig.
	ServiceLatency time.Duration

	Retries          int
	RetryBackoff     time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Deadline         time.Duration

	// ClusterShards > 0 runs the soak against the full sharded cluster
	// instead of a monolithic engine: a serprouter-style coordinator
	// scatter-gathering over that many in-process shard nodes, each
	// behind its own admission gate.
	//
	// With ClusterReplicas > 1 every shard runs that many replica nodes
	// and the fault is a replica-level outage: replica 0 of EVERY shard
	// goes dark (500s, /healthz included) from the start of the
	// error-burst day until two hours into the latency-spike day. The
	// soak then proves the replication tentpole: zero partial pages (every
	// leg fails over to a surviving replica), failovers and per-replica
	// breaker trips observed, and the background health prober — not
	// search traffic — re-admits all recovered replicas, balancing the
	// breaker ledger.
	//
	// With ClusterReplicas <= 1 the legacy single-replica chaos applies:
	// shard 0 suffers the outage for the error-burst day and the soak
	// proves graded degradation instead — pages during the outage are
	// partial, never errors, and no retrieval goes fully unavailable.
	ClusterShards   int
	ClusterReplicas int

	// ShedFractionBudget is the largest tolerated fraction of admission
	// decisions that ended in a shed (the "shed fraction within budget"
	// soak invariant).
	ShedFractionBudget float64
	// Watchdog is the wall-clock time after which a still-running soak is
	// declared deadlocked (the "no deadlock" invariant); 0 disables it.
	Watchdog time.Duration

	Logger *slog.Logger
	// TraceCapacity sizes the span ring when a trace artifact is wanted
	// (0 = no span recording).
	TraceCapacity int
}

func defaultSoakOptions() soakOptions {
	return soakOptions{
		Seed:           1,
		Terms:          4,
		Wait:           11 * time.Minute,
		MaxInflight:    4,
		QueueDepth:     8,
		ServiceTime:    500 * time.Millisecond,
		ServiceLatency: 10 * time.Millisecond,
		// 20 attempts with 1s linear backoff plus 45s breaker cooldowns
		// keeps the worst-case fetch under ~8 virtual minutes — inside
		// both the 10-minute deadline and the 11-minute slot, so faults
		// are recovered within the round they struck.
		Retries:            20,
		RetryBackoff:       time.Second,
		BreakerThreshold:   3,
		BreakerCooldown:    45 * time.Second,
		Deadline:           10 * time.Minute,
		ClusterReplicas:    2,
		ShedFractionBudget: 0.75,
		Watchdog:           4 * time.Minute,
	}
}

// soakProbeInterval is the background replica health-probe cadence in
// replicated cluster soaks. Probe instants land on five-minute marks plus
// the router's fixed half-second phase, disjoint from every request
// instant, so breaker re-admissions replay identically across same-seed
// runs.
const soakProbeInterval = 5 * time.Minute

// soakEpoch anchors the virtual campaign; one day per fault phase.
var soakEpoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

// soakPhases is the seeded multi-phase fault schedule, one entry per
// virtual day: a calm baseline, an error burst that trips circuit
// breakers, a latency spike, and a final calm day that proves every
// breaker re-closes once the faults clear.
func soakPhases(seed uint64, clk simclock.Clock) []browser.ChaosConfig {
	return []browser.ChaosConfig{
		{}, // day 0: calm — overload only
		{Seed: seed, ErrorRate: 0.3, ServerErrorRate: 0.3, Clock: clk}, // day 1: error burst
		{Seed: seed, Latency: 3 * time.Second, Clock: clk},             // day 2: latency spike
		{}, // day 3: calm — recovery
	}
}

// phasedTransport switches between per-day chaos transports on the virtual
// clock, modelling a fault landscape that changes over the campaign.
type phasedTransport struct {
	clk    simclock.Clock
	epoch  time.Time
	phases []http.RoundTripper
}

func newPhasedTransport(seed uint64, clk simclock.Clock) *phasedTransport {
	base := &http.Transport{}
	cfgs := soakPhases(seed, clk)
	phases := make([]http.RoundTripper, len(cfgs))
	for i, cfg := range cfgs {
		if cfg == (browser.ChaosConfig{}) {
			phases[i] = base
			continue
		}
		phases[i] = browser.NewChaosTransport(cfg, base)
	}
	return &phasedTransport{clk: clk, epoch: soakEpoch, phases: phases}
}

func (p *phasedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	day := int(p.clk.Now().Sub(p.epoch) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	if day >= len(p.phases) {
		day = len(p.phases) - 1
	}
	return p.phases[day].RoundTrip(req)
}

// injected sums the faults every phase transport injected.
func (p *phasedTransport) injected() uint64 {
	var n uint64
	for _, rt := range p.phases {
		if ct, ok := rt.(*browser.ChaosTransport); ok {
			n += ct.Injected()
		}
	}
	return n
}

// soakSummary is what one run measured; JSONL holds the campaign's
// observations exactly as cmd/crawl would have written them, the payload
// the determinism test byte-compares across same-seed runs.
type soakSummary struct {
	Observations  int
	FailedObs     int
	ShedObs       int
	Admitted      uint64
	ShedByReason  map[string]uint64
	ShedFraction  float64
	BreakerOpen   uint64
	BreakerReopen uint64
	BreakerClose  uint64
	FaultsDrawn   uint64
	Retries       uint64
	VirtualTime   time.Duration
	JSONL         []byte
	Spans         *telemetry.SpanRecorder
	// StatzJSON is the final /statz snapshot — like JSONL, it must be
	// byte-identical across same-seed runs.
	StatzJSON []byte
	// StatzPolls / StatzPollErrors tally the wall-clock goroutine that
	// hammered the live /statz endpoint while the campaign ran; the
	// invariants demand it was exercised and never served garbage.
	StatzPolls      uint64
	StatzPollErrors uint64
	// ParityViolation is non-empty when the streaming scorecard diverged
	// from the batch pipeline's verdicts on the same observations.
	ParityViolation string

	// Cluster-mode tallies (zero in monolith soaks).
	RouterRetrievals    uint64            // scatter-gather rounds issued
	RouterPartial       uint64            // rounds merged from fewer than all shards
	RouterUnavailable   uint64            // rounds where no shard contributed
	RouterOutcomes      map[string]uint64 // per-shard fan-out leg outcomes
	RouterBreakerOpen   uint64
	RouterBreakerClose  uint64
	RouterBreakerReopen uint64
	// Replication tallies (zero when ClusterReplicas <= 1).
	RouterReplicaOutcomes map[string]uint64 // per-replica attempt outcomes
	RouterFailovers       uint64            // replica attempts beyond a leg's first
	RouterProbes          map[string]uint64 // background health probes by outcome
	RouterReadmissions    uint64            // breakers re-closed by a probe

	// Cluster trace-stitching artifacts (cluster mode with TraceCapacity
	// only): the full stitched cross-process trace set, per-lane collection
	// errors, the trace IDs of every campaign observation and of the
	// post-campaign probes, and the probes' /clustertracez JSON and Chrome
	// exports — the bodies same-seed runs must reproduce byte-identically.
	ClusterTraces     []telemetry.StitchedTrace
	ClusterLaneErrors []string
	ObsTraceIDs       []string
	ProbeTraceIDs     []string
	ClusterTracezJSON []byte
	ClusterChrome     []byte
}

// runSoak executes the chaos soak: a virtual-time campaign against an
// in-process engine behind admission control, with the client-side fault
// schedule in soakPhases. It returns the summary plus an error naming
// every violated invariant.
func runSoak(opts soakOptions) (*soakSummary, error) {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}

	if opts.Watchdog > 0 {
		// The no-deadlock invariant, enforced by construction: a soak
		// that outlives the watchdog in WALL time (virtual campaigns
		// finish in seconds) has wedged the clock/admission/retry
		// machinery, and the watchdog crashes the run so CI reports it
		// instead of hanging.
		finished := make(chan struct{})
		defer close(finished)
		fired := make(chan struct{})
		go func() {
			simclock.Wall().Sleep(opts.Watchdog)
			close(fired)
		}()
		go func() {
			select {
			case <-finished:
			case <-fired:
				panic(fmt.Sprintf("soak: wall-clock watchdog fired after %s — the rig deadlocked", opts.Watchdog))
			}
		}()
	}

	clk := simclock.NewManual(soakEpoch)
	reg := telemetry.NewRegistry()
	corpus := queries.StudyCorpus()

	var spans *telemetry.SpanRecorder
	if opts.TraceCapacity > 0 {
		spans = telemetry.NewSpanRecorder(opts.TraceCapacity, clk)
	}

	ecfg := engine.DefaultConfig()
	if opts.Seed != 0 {
		ecfg.Seed = opts.Seed
	}
	var handler *serpserver.Handler
	var ct *router.ClusterTracez
	if opts.ClusterShards > 0 {
		// Cluster topology: router + N shard nodes. Shard admission is
		// deliberately generous — the gate is in the serving chain (its
		// code path runs on every retrieval) but never queues or sheds,
		// because a shard shed would depend on wall-clock overlap of
		// concurrent fan-outs and break the byte-determinism invariant.
		// The tight 4/8 gate stays at the router, where sheds surface as
		// deterministic crawler retries.
		replicated := opts.ClusterReplicas > 1
		middleware := func(shard, replica int, next http.Handler) http.Handler {
			if replicated {
				// Replica-level fault: replica 0 of EVERY shard goes dark
				// for the outage window; its siblings keep serving.
				if replica != 0 {
					return next
				}
				return &replicaOutage{clk: clk, next: next}
			}
			// Legacy single-replica fault: shard 0 dark for day 1.
			if shard != 0 {
				return next
			}
			return &shardOutage{clk: clk, next: next}
		}
		probeInterval := time.Duration(0)
		if replicated {
			probeInterval = soakProbeInterval
		}
		cl := router.NewLocalCluster(router.ClusterConfig{
			Shards:   opts.ClusterShards,
			Replicas: opts.ClusterReplicas,
			Engine:   ecfg,
			Clock:    clk,
			ShardAdmission: serpserver.AdmissionConfig{
				MaxInflight: 64,
				QueueDepth:  64,
				ServiceTime: opts.ServiceTime,
				Clock:       clk,
			},
			ShardMiddleware:  middleware,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerCooldown:  opts.BreakerCooldown,
			ProbeInterval:    probeInterval,
			// Shards record spans into rings of the same capacity as the
			// router's, so the post-campaign stitch can join every fan-out
			// leg with its shard-side server span.
			SpanCapacity: opts.TraceCapacity,
			Registry:     reg,
			RouterSpans:  spans,
		})
		// Stop is best-effort: a prober parked on the quiesced campaign
		// clock stays parked, which the rig accepts as a bounded leak.
		defer cl.StopProber()
		handler = cl.Handler
		if spans != nil {
			ct = router.NewClusterTracez(spans, cl.Client)
		}
	} else {
		eng := engine.NewCustom(ecfg, clk, engine.WithCorpus(corpus), engine.WithTelemetry(reg))
		var hopts []serpserver.HandlerOption
		if spans != nil {
			hopts = append(hopts, serpserver.WithSpans(spans))
		}
		handler = serpserver.NewHandler(eng, hopts...)
	}
	var inner http.Handler = handler
	if opts.ServiceLatency > 0 {
		inner = serpserver.WithChaos(serpserver.ChaosConfig{
			Seed:    opts.Seed,
			Latency: opts.ServiceLatency,
			Clock:   simclock.Wall(),
		}, handler)
	}
	root := serpserver.WithAdmission(serpserver.AdmissionConfig{
		MaxInflight: opts.MaxInflight,
		QueueDepth:  opts.QueueDepth,
		ServiceTime: opts.ServiceTime,
		Clock:       clk,
	}, handler, inner)
	srv, err := serpserver.Listen("127.0.0.1:0", root)
	if err != nil {
		return nil, err
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	transport := newPhasedTransport(opts.Seed, clk)
	ccfg := crawler.DefaultConfig()
	ccfg.WaitBetweenTerms = opts.Wait
	ccfg.RetryAttempts = opts.Retries
	ccfg.RetryBackoff = opts.RetryBackoff
	ccfg.BreakerThreshold = opts.BreakerThreshold
	ccfg.BreakerCooldown = opts.BreakerCooldown
	ccfg.DeadlineBudget = opts.Deadline
	// Fail-soft budgets so a pathological round is recorded rather than
	// aborting the soak; the invariants below still demand zero terminal
	// failures.
	ccfg.FailureBudget = 0.25
	ccfg.ShedBudget = 0.5
	cr, err := crawler.New(ccfg, clk, srv.URL(), geo.StudyDataset(), corpus)
	if err != nil {
		return nil, err
	}
	cr.Logger, cr.Telemetry, cr.Spans, cr.Transport = logger, reg, spans, transport

	// The live audit surface rides along on every soak: the streaming
	// aggregator ingests sweeps as the crawler's sink while a wall-clock
	// goroutine hammers /statz concurrently, so the endpoint is exercised
	// under overload and under -race.
	stream := analysis.NewStream(
		analysis.WithDriftThreshold(0.5),
		analysis.WithStreamTelemetry(reg),
		analysis.WithStreamSpans(spans),
	)
	srec := statz.NewRecorder(stream, statz.WithProgress(cr.ProgressState))
	cr.Sink = srec
	statzSrv, err := serpserver.Listen("127.0.0.1:0", statz.Mux(srec, clk.Now, reg, spans))
	if err != nil {
		return nil, fmt.Errorf("soak: statz listen: %w", err)
	}
	statzSrv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		statzSrv.Shutdown(ctx)
	}()

	var statzPolls, statzPollErrs atomic.Uint64
	pollStop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			statzPolls.Add(1)
			resp, perr := http.Get(statzSrv.URL() + "/statz")
			if perr != nil {
				statzPollErrs.Add(1)
			} else {
				var snap statz.Snapshot
				if derr := json.NewDecoder(resp.Body).Decode(&snap); derr != nil {
					statzPollErrs.Add(1)
				}
				resp.Body.Close()
			}
			simclock.Wall().Sleep(5 * time.Millisecond)
		}
	}()

	terms := corpus.Category(queries.Local)
	if opts.Terms > 0 && len(terms) > opts.Terms {
		terms = terms[:opts.Terms]
	}
	phase := crawler.Phase{
		Name:  "soak",
		Terms: terms,
		// District granularity: 15 vantages x (treatment + control) = 30
		// concurrent fetches per round against MaxInflight+QueueDepth
		// slots — sustained overload by design.
		Granularities: []geo.Granularity{geo.County},
		Days:          len(soakPhases(opts.Seed, clk)),
	}

	start := clk.Now()
	obs, err := cr.RunCampaignVirtual(clk, []crawler.Phase{phase})
	close(pollStop)
	pollWG.Wait()
	if err != nil {
		return nil, fmt.Errorf("soak: campaign: %w", err)
	}

	sum := &soakSummary{
		Observations: len(obs),
		Admitted:     reg.Counter("serpd_admission_admitted_total", "").Value(),
		ShedByReason: reg.CounterVec("serpd_admission_shed_total", "", "reason").Values(),
		FaultsDrawn:  transport.injected(),
		Retries:      reg.Counter("browser_retries_total", "").Value(),
		VirtualTime:  clk.Now().Sub(start),
		Spans:        spans,
	}
	for _, o := range obs {
		if o.Failed {
			sum.FailedObs++
		}
		if o.Shed {
			sum.ShedObs++
		}
	}
	breakers := reg.CounterVec("browser_breaker_transitions_total", "", "transition").Values()
	sum.BreakerOpen = breakers["open"]
	sum.BreakerReopen = breakers["reopen"]
	sum.BreakerClose = breakers["close"]
	if opts.ClusterShards > 0 {
		sum.RouterRetrievals = reg.Counter("router_retrievals_total", "").Value()
		sum.RouterPartial = reg.Counter("router_partial_results_total", "").Value()
		sum.RouterUnavailable = reg.Counter("router_unavailable_total", "").Value()
		sum.RouterOutcomes = reg.CounterVec("router_shard_requests_total", "", "outcome").Values()
		rb := reg.CounterVec("router_breaker_transitions_total", "", "event").Values()
		sum.RouterBreakerOpen = rb["open"]
		sum.RouterBreakerReopen = rb["reopen"]
		sum.RouterBreakerClose = rb["close"]
		sum.RouterReplicaOutcomes = reg.CounterVec("router_replica_requests_total", "", "outcome").Values()
		sum.RouterFailovers = reg.Counter("router_replica_failovers_total", "").Value()
		sum.RouterProbes = reg.CounterVec("router_replica_probes_total", "", "outcome").Values()
		sum.RouterReadmissions = reg.Counter("router_replica_readmissions_total", "").Value()
	}
	var shedTotal uint64
	for _, n := range sum.ShedByReason {
		shedTotal += n
	}
	if decisions := sum.Admitted + shedTotal; decisions > 0 {
		sum.ShedFraction = float64(shedTotal) / float64(decisions)
	}
	var buf bytes.Buffer
	if err := storage.WriteJSONL(&buf, obs); err != nil {
		return nil, fmt.Errorf("soak: encode observations: %w", err)
	}
	sum.JSONL = buf.Bytes()

	sum.StatzPolls = statzPolls.Load()
	sum.StatzPollErrors = statzPollErrs.Load()
	sum.StatzJSON, err = srec.SnapshotJSON(clk.Now())
	if err != nil {
		return nil, fmt.Errorf("soak: statz snapshot: %w", err)
	}
	// Streaming/batch parity: the scorecard aggregated sweep-by-sweep
	// while the campaign ran must equal the batch pipeline's verdicts on
	// the final observations exactly.
	if ds, derr := analysis.NewDataset(obs); derr != nil {
		sum.ParityViolation = fmt.Sprintf("batch dataset: %v", derr)
	} else if batch, live := ds.Scorecard(), stream.Scorecard(); !reflect.DeepEqual(batch, live) {
		sum.ParityViolation = fmt.Sprintf("streaming scorecard diverged from batch: %v vs %v", live, batch)
	}

	// Cluster trace stitching: probe the quiesced cluster, then drain and
	// stitch every node's span ring for the completeness, attribution, and
	// byte-identity invariants.
	if ct != nil {
		for _, o := range obs {
			sum.ObsTraceIDs = append(sum.ObsTraceIDs, o.TraceID)
		}
		if err := collectClusterTraces(handler, ct, sum); err != nil {
			return nil, err
		}
	}

	return sum, checkInvariants(opts, sum)
}

// checkInvariants validates the soak's postconditions, returning one error
// naming every violation (nil when the run held up).
func checkInvariants(opts soakOptions, sum *soakSummary) error {
	var bad []string
	vantages := len(geo.StudyDataset().At(geo.County))
	expected := opts.Terms * vantages * 2 * len(soakPhases(opts.Seed, nil))
	if sum.Observations != expected {
		bad = append(bad, fmt.Sprintf("observations: got %d, want %d (no slot may be dropped)", sum.Observations, expected))
	}
	if sum.FailedObs != 0 || sum.ShedObs != 0 {
		// Shed-exempt retries must drain every overload wave and the
		// retry budget must outlast every fault phase; a terminal failure
		// means recovery machinery gave up inside a round.
		bad = append(bad, fmt.Sprintf("terminal failures: %d failed, %d shed observations (want 0/0)", sum.FailedObs, sum.ShedObs))
	}
	if shedTotal := sum.ShedByReason[shedQueueFullLabel]; shedTotal == 0 {
		bad = append(bad, "admission gate never shed on a full queue despite sustained overload")
	}
	if sum.ShedFraction > opts.ShedFractionBudget {
		bad = append(bad, fmt.Sprintf("shed fraction %.3f above budget %.3f", sum.ShedFraction, opts.ShedFractionBudget))
	}
	if sum.BreakerOpen == 0 {
		bad = append(bad, "no breaker ever opened despite the error-burst day")
	}
	if sum.BreakerOpen != sum.BreakerClose {
		// Every trip must be matched by a re-close once faults clear
		// (reopens are half-open probe failures, counted separately, so
		// the trip/close ledger balances exactly at quiescence).
		bad = append(bad, fmt.Sprintf("breaker ledger unbalanced: %d opens vs %d closes (%d reopens)", sum.BreakerOpen, sum.BreakerClose, sum.BreakerReopen))
	}
	if sum.FaultsDrawn == 0 {
		bad = append(bad, "fault schedule injected nothing — the soak tested fair weather")
	}
	if sum.StatzPolls == 0 {
		bad = append(bad, "live /statz endpoint was never polled — the audit surface went untested")
	}
	if sum.StatzPollErrors > 0 {
		bad = append(bad, fmt.Sprintf("live /statz served unparseable responses: %d of %d polls", sum.StatzPollErrors, sum.StatzPolls))
	}
	if sum.ParityViolation != "" {
		bad = append(bad, fmt.Sprintf("streaming/batch parity: %s", sum.ParityViolation))
	}
	if opts.ClusterShards > 0 && opts.ClusterReplicas > 1 {
		// Replication: with every shard keeping a healthy sibling through
		// the replica-0 outage, NOT ONE page may degrade — every leg must
		// fail over — and the recovered replicas must be re-admitted by the
		// background health prober, balancing the breaker ledger.
		if sum.RouterPartial != 0 {
			bad = append(bad, fmt.Sprintf("%d retrievals went partial despite a surviving replica per shard (want 0: failover must absorb the outage)", sum.RouterPartial))
		}
		if sum.RouterUnavailable != 0 {
			bad = append(bad, fmt.Sprintf("%d retrievals found no shard at all (want 0)", sum.RouterUnavailable))
		}
		legOutcomes := make([]string, 0, len(sum.RouterOutcomes))
		for outcome := range sum.RouterOutcomes {
			legOutcomes = append(legOutcomes, outcome)
		}
		sort.Strings(legOutcomes)
		for _, outcome := range legOutcomes {
			if outcome != "ok" {
				bad = append(bad, fmt.Sprintf("fan-out leg outcome %q observed (want every leg ok via failover): %v", outcome, sum.RouterOutcomes))
			}
		}
		if sum.RouterReplicaOutcomes["ok"] == 0 || sum.RouterReplicaOutcomes["error"] == 0 || sum.RouterReplicaOutcomes["breaker_open"] == 0 {
			bad = append(bad, fmt.Sprintf("replica attempt outcome mix degenerate: %v (want ok, error, and breaker_open all exercised)", sum.RouterReplicaOutcomes))
		}
		if sum.RouterFailovers == 0 {
			bad = append(bad, "no leg ever failed over despite the replica-outage window")
		}
		if sum.RouterBreakerOpen == 0 {
			bad = append(bad, "no replica breaker ever tripped despite the replica-outage window")
		}
		if sum.RouterBreakerOpen != sum.RouterBreakerClose {
			bad = append(bad, fmt.Sprintf("replica breaker ledger unbalanced: %d opens vs %d closes (%d reopens)", sum.RouterBreakerOpen, sum.RouterBreakerClose, sum.RouterBreakerReopen))
		}
		if sum.RouterProbes["error"] == 0 {
			bad = append(bad, "the health prober never observed the outage (no failed probes)")
		}
		if sum.RouterReadmissions == 0 {
			bad = append(bad, "no replica was re-admitted by a health probe — recovery leaned on search traffic")
		}
		if opts.TraceCapacity > 0 {
			bad = append(bad, clusterTraceViolations(opts, sum)...)
		}
	} else if opts.ClusterShards > 0 {
		// Graded degradation: the shard-0 outage day must surface as
		// partial pages — never as unavailability — and the router's
		// breaker ledger must balance once the shard heals.
		if sum.RouterPartial == 0 {
			bad = append(bad, "no retrieval went partial despite the shard-outage day")
		}
		if sum.RouterPartial >= sum.RouterRetrievals {
			bad = append(bad, fmt.Sprintf("degradation unbounded: %d of %d retrievals partial (healthy days must merge complete)", sum.RouterPartial, sum.RouterRetrievals))
		}
		if sum.RouterUnavailable != 0 {
			bad = append(bad, fmt.Sprintf("%d retrievals found no shard at all (want 0: healthy shards must keep answering)", sum.RouterUnavailable))
		}
		if sum.RouterOutcomes["ok"] == 0 || sum.RouterOutcomes["error"] == 0 || sum.RouterOutcomes["breaker_open"] == 0 {
			bad = append(bad, fmt.Sprintf("shard fan-out outcome mix degenerate: %v (want ok, error, and breaker_open all exercised)", sum.RouterOutcomes))
		}
		if sum.RouterBreakerOpen == 0 {
			bad = append(bad, "router breaker never tripped despite the shard-outage day")
		}
		if sum.RouterBreakerOpen != sum.RouterBreakerClose {
			bad = append(bad, fmt.Sprintf("router breaker ledger unbalanced: %d opens vs %d closes (%d reopens)", sum.RouterBreakerOpen, sum.RouterBreakerClose, sum.RouterBreakerReopen))
		}
		if opts.TraceCapacity > 0 {
			bad = append(bad, clusterTraceViolations(opts, sum)...)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("soak: %d invariant(s) violated:\n  - %s", len(bad), strings.Join(bad, "\n  - "))
	}
	return nil
}

// shedQueueFullLabel mirrors the serpserver's queue_full shed reason; kept
// as a local constant so the soak binary states its expectation explicitly.
const shedQueueFullLabel = "queue_full"

// shardOutage kills one shard's retrieval for the whole error-burst
// virtual day (day 1 of the fault schedule): every /shard/search answers
// 500 while the day lasts, then the shard heals on its own. The outage is
// a pure function of the campaign clock, so same-seed runs degrade — and
// recover — identically. Operability endpoints stay up; only retrieval
// goes dark, exactly like a node whose index wedged.
type shardOutage struct {
	clk  simclock.Clock
	next http.Handler
}

func (s *shardOutage) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	day := int(s.clk.Now().Sub(soakEpoch) / (24 * time.Hour))
	if day == 1 && r.URL.Path == router.SearchPath {
		http.Error(w, "soak: injected shard outage", http.StatusInternalServerError)
		return
	}
	s.next.ServeHTTP(w, r)
}

// Replica-outage window for replicated cluster soaks: replica 0 of every
// shard is dark from the start of the error-burst day until two hours into
// the latency-spike day. Ending off the day boundary — and off the
// crawler's 11-minute round grid — guarantees the first actor to find the
// replicas healthy again is the background health prober (its 5-minute
// probe ticks land on the window's end instant plus the fixed half-second
// phase, minutes before the next search round), so the soak proves
// probe-driven re-admission rather than traffic-driven half-open recovery.
const (
	replicaOutageStart = 24 * time.Hour
	replicaOutageEnd   = 50 * time.Hour
)

// inReplicaOutage reports whether t falls inside the replica-outage window.
func inReplicaOutage(t time.Time) bool {
	d := t.Sub(soakEpoch)
	return d >= replicaOutageStart && d < replicaOutageEnd
}

// replicaOutage kills one replica node for the outage window: retrieval
// AND /healthz answer 500 — a probing router must see the node as down,
// not merely degraded — then the replica heals on its own. Like
// shardOutage, the fault is a pure function of the campaign clock, so
// same-seed runs degrade and recover identically.
type replicaOutage struct {
	clk  simclock.Clock
	next http.Handler
}

func (s *replicaOutage) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if inReplicaOutage(s.clk.Now()) && (r.URL.Path == router.SearchPath || r.URL.Path == "/healthz") {
		http.Error(w, "soak: injected replica outage", http.StatusInternalServerError)
		return
	}
	s.next.ServeHTTP(w, r)
}
