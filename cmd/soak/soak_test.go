package main

import (
	"bytes"
	"testing"
)

// TestSoakInvariantsAndDeterminism runs the full chaos soak twice with the
// same seed: both runs must hold every overload-resilience invariant
// (runSoak returns an error naming any violation) and write byte-identical
// observation output. A third run with a different seed guards against the
// comparison passing vacuously.
func TestSoakInvariantsAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak takes a few wall-clock seconds")
	}
	opts := defaultSoakOptions()
	opts.Terms = 2 // half-size campaign: same 30-wide overload per round, faster CI

	first, err := runSoak(opts)
	if err != nil {
		t.Fatalf("first soak run violated invariants: %v", err)
	}
	second, err := runSoak(opts)
	if err != nil {
		t.Fatalf("second soak run violated invariants: %v", err)
	}
	if !bytes.Equal(first.JSONL, second.JSONL) {
		t.Fatalf("same-seed soak runs diverged: %d vs %d JSONL bytes",
			len(first.JSONL), len(second.JSONL))
	}
	// The final /statz snapshot is keyed to the virtual clock, never wall
	// time, so it must be byte-identical across same-seed runs even though
	// each run polled the live endpoint on its own wall-clock cadence.
	if !bytes.Equal(first.StatzJSON, second.StatzJSON) {
		t.Fatalf("same-seed soak runs served different final /statz snapshots:\n%s\nvs\n%s",
			first.StatzJSON, second.StatzJSON)
	}

	opts.Seed = 7
	other, err := runSoak(opts)
	if err != nil {
		t.Fatalf("seed-7 soak run violated invariants: %v", err)
	}
	if bytes.Equal(first.JSONL, other.JSONL) {
		t.Fatal("different seeds produced identical observations — the determinism check is vacuous")
	}
}

// TestClusterSoakInvariantsAndDeterminism runs the soak against the full
// replicated topology (router + 3 shards x 2 replicas, replica 0 of every
// shard dark for a 26-hour window) twice with the same seed: both runs
// must hold every monolith invariant PLUS the replication invariants (zero
// partial pages — every leg fails over to the surviving replica — breaker
// trips re-admitted by the background health prober, balanced ledger) and
// still write byte-identical observations — merge determinism under
// concurrency, failover, overload, and -race all at once.
//
// With TraceCapacity set the runs additionally enforce the cluster-tracing
// invariants: every sampled request stitches into a complete cross-process
// trace, fault attribution matches the injected schedule, and the probes'
// /clustertracez and Chrome exports are byte-identical across runs.
func TestClusterSoakInvariantsAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos soak takes a few wall-clock seconds")
	}
	opts := defaultSoakOptions()
	opts.Terms = 2
	opts.ClusterShards = 3
	opts.TraceCapacity = 1 << 17

	first, err := runSoak(opts)
	if err != nil {
		t.Fatalf("first cluster soak run violated invariants: %v", err)
	}
	if first.RouterRetrievals == 0 {
		t.Fatal("cluster soak issued no scatter-gather rounds")
	}
	if first.RouterFailovers == 0 || first.RouterReadmissions == 0 {
		t.Fatalf("replication untested: %d failovers, %d probe re-admissions (want both > 0)",
			first.RouterFailovers, first.RouterReadmissions)
	}
	if len(first.ClusterTraces) == 0 || len(first.ObsTraceIDs) == 0 {
		t.Fatal("cluster soak stitched no traces")
	}
	second, err := runSoak(opts)
	if err != nil {
		t.Fatalf("second cluster soak run violated invariants: %v", err)
	}
	if !bytes.Equal(first.JSONL, second.JSONL) {
		t.Fatalf("same-seed cluster soak runs diverged: %d vs %d JSONL bytes",
			len(first.JSONL), len(second.JSONL))
	}
	if !bytes.Equal(first.StatzJSON, second.StatzJSON) {
		t.Fatalf("same-seed cluster soak runs served different final /statz snapshots:\n%s\nvs\n%s",
			first.StatzJSON, second.StatzJSON)
	}
	// The router's degradation bookkeeping must itself be deterministic:
	// the outage window is a pure function of the campaign clock.
	if first.RouterPartial != second.RouterPartial ||
		first.RouterUnavailable != second.RouterUnavailable {
		t.Fatalf("cluster degradation tallies diverged across same-seed runs: partial %d vs %d, unavailable %d vs %d",
			first.RouterPartial, second.RouterPartial,
			first.RouterUnavailable, second.RouterUnavailable)
	}
	// So must the replication bookkeeping: replica selection is a pure
	// function of trace IDs, and re-admission of the probe schedule.
	if first.RouterFailovers != second.RouterFailovers ||
		first.RouterReadmissions != second.RouterReadmissions {
		t.Fatalf("replication tallies diverged across same-seed runs: failovers %d vs %d, readmissions %d vs %d",
			first.RouterFailovers, second.RouterFailovers,
			first.RouterReadmissions, second.RouterReadmissions)
	}
	// The stitched-trace exports for the quiesced probes must reproduce
	// byte for byte: span IDs, ordering, and timeline are all functions of
	// the seed and the campaign clock, never of scheduling.
	if !bytes.Equal(first.ClusterTracezJSON, second.ClusterTracezJSON) {
		t.Fatalf("same-seed /clustertracez probe bodies diverged:\n%s\nvs\n%s",
			first.ClusterTracezJSON, second.ClusterTracezJSON)
	}
	if !bytes.Equal(first.ClusterChrome, second.ClusterChrome) {
		t.Fatalf("same-seed Chrome trace exports diverged: %d vs %d bytes",
			len(first.ClusterChrome), len(second.ClusterChrome))
	}
}
