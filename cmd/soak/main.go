// Command soak is the chaos soak harness: it runs a virtual-time crawl
// campaign against an in-process engine throttled by admission control
// while a seeded, multi-phase fault schedule (calm, error burst, latency
// spike, recovery) batters the wire — then asserts the overload-resilience
// invariants held:
//
//   - the rig never deadlocks (a wall-clock watchdog crashes a wedged run);
//   - the admission gate sheds under overload, within the shed budget;
//   - every circuit-breaker trip is matched by a re-close once faults clear;
//   - no fetch fails terminally: retries, Retry-After backoff, and breaker
//     cooldowns recover every fault inside its lock-step round;
//   - the live /statz audit surface, polled from a wall-clock goroutine
//     for the whole campaign, always parses and its streaming scorecard
//     exactly matches the batch pipeline's verdicts at campaign end.
//
// Usage:
//
//	soak [-seed 1] [-terms 4] [-max-inflight 4] [-queue-depth 8]
//	     [-retries 20] [-breaker-threshold 3] [-breaker-cooldown 45s]
//	     [-deadline 10m] [-shed-fraction-budget 0.75] [-watchdog 4m]
//	     [-cluster-shards 3] [-cluster-replicas 2]
//	     [-out obs.jsonl] [-trace-out soak-trace.json]
//	     [-clustertracez-out probes.json] [-cluster-trace-out cluster.json]
//
// With -cluster-shards N the soak targets the full sharded topology — a
// serprouter-style coordinator scatter-gathering over N in-process shard
// nodes. With -cluster-replicas R > 1 (the default is 2) every shard runs
// R replica nodes and the injected fault is a replica-level outage:
// replica 0 of every shard goes dark (retrieval and /healthz) for a
// 26-hour window spanning the error-burst day, and the soak asserts the
// replication invariants — ZERO partial pages (every leg fails over to the
// surviving replica), per-replica breakers trip and are re-admitted by the
// background health prober (balanced ledger), and same-seed runs stay
// byte-identical. With -cluster-replicas 1 the legacy shard-0 outage
// applies instead, asserting graded degradation: pages go partial, never
// unavailable, and the router breaker trips and re-closes. When spans are
// recorded (any trace artifact flag), the cluster soak also stitches every
// node's /spanz export into cross-process traces and asserts the
// observability invariants: every sampled request yields a complete
// stitched trace (router plus all contacted shards), critical-path
// attribution matches the injected fault schedule, and the post-campaign
// probes' /clustertracez and Chrome bodies reproduce byte-identically
// across same-seed runs.
//
// The campaign's observations can be written with -out, and -trace-out
// dumps the full span timeline (admission sheds included) in Chrome
// trace-event format. In cluster mode, -clustertracez-out writes the
// probes' stitched critical-path reports and -cluster-trace-out the
// stitched multi-process Chrome trace (one lane per node). Exit status is
// non-zero when any invariant fails.
//
// Same-seed soak runs produce byte-identical observation output; the
// package's test runs the harness twice and enforces it.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func main() {
	opts := defaultSoakOptions()
	flag.Uint64Var(&opts.Seed, "seed", opts.Seed, "seed for the engine and the fault schedule")
	flag.IntVar(&opts.Terms, "terms", opts.Terms, "terms in the soak phase")
	flag.DurationVar(&opts.Wait, "wait", opts.Wait, "lock-step slot width between terms")
	flag.IntVar(&opts.MaxInflight, "max-inflight", opts.MaxInflight, "admission gate concurrency bound")
	flag.IntVar(&opts.QueueDepth, "queue-depth", opts.QueueDepth, "admission gate queue depth")
	flag.DurationVar(&opts.ServiceTime, "service-time", opts.ServiceTime, "per-request service estimate behind Retry-After hints")
	flag.DurationVar(&opts.ServiceLatency, "service-latency", opts.ServiceLatency, "wall-clock latency injected per admitted request so the gate saturates")
	flag.IntVar(&opts.Retries, "retries", opts.Retries, "fetch attempts per query")
	flag.DurationVar(&opts.RetryBackoff, "retry-backoff", opts.RetryBackoff, "linear backoff base between attempts")
	flag.IntVar(&opts.BreakerThreshold, "breaker-threshold", opts.BreakerThreshold, "consecutive failures that open a browser's breaker")
	flag.DurationVar(&opts.BreakerCooldown, "breaker-cooldown", opts.BreakerCooldown, "breaker open-state dwell")
	flag.DurationVar(&opts.Deadline, "deadline", opts.Deadline, "end-to-end fetch deadline propagated to the server")
	flag.IntVar(&opts.ClusterShards, "cluster-shards", opts.ClusterShards, "soak a sharded cluster (router + N shard nodes) instead of a monolith; 0 = monolith")
	flag.IntVar(&opts.ClusterReplicas, "cluster-replicas", opts.ClusterReplicas, "replicas per shard in cluster mode; > 1 switches to the replica-outage schedule and failover invariants")
	flag.Float64Var(&opts.ShedFractionBudget, "shed-fraction-budget", opts.ShedFractionBudget, "max tolerated fraction of admission decisions ending in a shed")
	flag.DurationVar(&opts.Watchdog, "watchdog", opts.Watchdog, "wall-clock deadline after which the run counts as deadlocked (0 = off)")
	out := flag.String("out", "", "write the campaign observations as JSONL")
	traceOut := flag.String("trace-out", "", "write the soak timeline as Chrome trace-event JSON")
	clusterTracezOut := flag.String("clustertracez-out", "", "write the post-campaign probes' stitched /clustertracez JSON (cluster mode)")
	clusterTraceOut := flag.String("cluster-trace-out", "", "write the probes' stitched multi-process Chrome trace (cluster mode)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("v", false, "debug logging: one record per fetch")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(telemetry.NewLogHandler(os.Stderr, *logFormat, level))
	opts.Logger = logger
	if *traceOut != "" || *clusterTracezOut != "" || *clusterTraceOut != "" {
		opts.TraceCapacity = 1 << 17
	}

	wall := simclock.Wall()
	start := wall.Now()
	sum, err := runSoak(opts)
	if sum != nil {
		logger.Info("soak complete",
			"observations", sum.Observations,
			"failed", sum.FailedObs,
			"shed_observations", sum.ShedObs,
			"admitted", sum.Admitted,
			"shed_by_reason", fmt.Sprint(sum.ShedByReason),
			"shed_fraction", fmt.Sprintf("%.3f", sum.ShedFraction),
			"breaker_open", sum.BreakerOpen,
			"breaker_reopen", sum.BreakerReopen,
			"breaker_close", sum.BreakerClose,
			"faults_injected", sum.FaultsDrawn,
			"retries", sum.Retries,
			"router_retrievals", sum.RouterRetrievals,
			"router_partial", sum.RouterPartial,
			"router_unavailable", sum.RouterUnavailable,
			"router_outcomes", fmt.Sprint(sum.RouterOutcomes),
			"router_breaker_open", sum.RouterBreakerOpen,
			"router_breaker_reopen", sum.RouterBreakerReopen,
			"router_breaker_close", sum.RouterBreakerClose,
			"router_replica_outcomes", fmt.Sprint(sum.RouterReplicaOutcomes),
			"router_failovers", sum.RouterFailovers,
			"router_probes", fmt.Sprint(sum.RouterProbes),
			"router_readmissions", sum.RouterReadmissions,
			"statz_polls", sum.StatzPolls,
			"statz_poll_errors", sum.StatzPollErrors,
			"virtual_elapsed", sum.VirtualTime.String(),
			"wall_elapsed", wall.Now().Sub(start).Round(time.Millisecond).String())
	}
	if err != nil {
		logger.Error("soak failed", "err", err)
		os.Exit(1)
	}
	if *out != "" && sum != nil {
		if werr := os.WriteFile(*out, sum.JSONL, 0o644); werr != nil {
			logger.Error("write observations", "err", werr)
			os.Exit(1)
		}
		logger.Info("observations written", "path", *out, "bytes", len(sum.JSONL))
	}
	if *traceOut != "" && sum != nil && sum.Spans != nil {
		f, cerr := os.Create(*traceOut)
		if cerr == nil {
			cerr = telemetry.WriteChromeTrace(f, sum.Spans.Snapshot())
			if closeErr := f.Close(); cerr == nil {
				cerr = closeErr
			}
		}
		if cerr != nil {
			logger.Error("write trace", "err", cerr)
			os.Exit(1)
		}
		logger.Info("soak trace written", "path", *traceOut, "spans", sum.Spans.Len())
	}
	writeArtifact := func(path, what string, body []byte) {
		if path == "" || sum == nil {
			return
		}
		if len(body) == 0 {
			logger.Error("write "+what, "err", "no cluster trace data (need -cluster-shards > 0)")
			os.Exit(1)
		}
		if werr := os.WriteFile(path, body, 0o644); werr != nil {
			logger.Error("write "+what, "err", werr)
			os.Exit(1)
		}
		logger.Info(what+" written", "path", path, "bytes", len(body))
	}
	writeArtifact(*clusterTracezOut, "clustertracez export", sum.ClusterTracezJSON)
	writeArtifact(*clusterTraceOut, "stitched cluster trace", sum.ClusterChrome)
}
