package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"geoserp/internal/httpheader"
	"geoserp/internal/router"
	"geoserp/internal/telemetry"
)

// Cluster-mode trace stitching checks: after the campaign the soak drains
// every node's span ring through the same /clustertracez machinery
// cmd/serprouter serves, and asserts the observability invariants — every
// sampled request left a complete stitched trace (router plus all contacted
// shards), the critical-path attribution matches the injected fault
// schedule exactly, and probe exports are byte-identical across same-seed
// runs.

// clusterProbes is how many post-campaign probe requests are issued against
// the quiesced cluster. Probes run on the frozen campaign clock with fixed
// inputs, so their stitched traces — and the /clustertracez and Chrome
// bodies exported for them — are byte-identical across same-seed runs,
// which the full-ring export is not (which attempts shed under overload
// depends on wall-clock overlap).
const clusterProbes = 2

// probeTraceID names probe i's trace.
func probeTraceID(i int) string { return fmt.Sprintf("soak-probe-%d", i) }

// collectClusterTraces issues the probes directly against the coordinator
// handler (bypassing the admission gate and chaos latency, which are
// wall-clock dependent), then collects and stitches every node's spans and
// captures the deterministic per-probe exports.
func collectClusterTraces(h http.Handler, ct *router.ClusterTracez, sum *soakSummary) error {
	for i := 0; i < clusterProbes; i++ {
		trace := probeTraceID(i)
		r := httptest.NewRequest(http.MethodGet,
			"/search?q=pizza&ll=41.4993,-81.6944&format=json", nil)
		r.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 5.1) Mobile")
		r.Header.Set(httpheader.ForwardedFor, "203.0.113.77")
		r.Header.Set(httpheader.TraceID, trace)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return fmt.Errorf("soak: probe %s: status %d: %s", trace, w.Code, w.Body.String())
		}
		if p := w.Header().Get(httpheader.SerpPartial); p != "" {
			return fmt.Errorf("soak: probe %s served partial page (%q) on the healed cluster", trace, p)
		}
		sum.ProbeTraceIDs = append(sum.ProbeTraceIDs, trace)
	}

	nodes, errs := ct.Collect()
	sum.ClusterLaneErrors = errs
	sum.ClusterTraces = telemetry.Stitch(nodes)

	serve := func(target string) ([]byte, error) {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		ct.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return nil, fmt.Errorf("soak: GET %s: status %d", target, w.Code)
		}
		return w.Body.Bytes(), nil
	}
	for _, trace := range sum.ProbeTraceIDs {
		body, err := serve(router.ClusterTracezPath + "?trace=" + trace)
		if err != nil {
			return err
		}
		sum.ClusterTracezJSON = append(sum.ClusterTracezJSON, body...)
		chrome, err := serve(router.ClusterTracezPath + "?trace=" + trace + "&format=chrome")
		if err != nil {
			return err
		}
		sum.ClusterChrome = append(sum.ClusterChrome, chrome...)
	}
	return nil
}

// clusterTraceViolations checks the stitched-trace postconditions, one
// message per violated invariant.
func clusterTraceViolations(opts soakOptions, sum *soakSummary) []string {
	var bad []string
	for i, e := range sum.ClusterLaneErrors {
		if e != "" {
			bad = append(bad, fmt.Sprintf("span collection lane %d failed: %s", i, e))
		}
	}
	byID := make(map[string]telemetry.StitchedTrace, len(sum.ClusterTraces))
	for _, tr := range sum.ClusterTraces {
		byID[tr.TraceID] = tr
	}

	// Completeness: every sampled request (one trace per observation) must
	// stitch into a full cross-process trace — coordinator span present,
	// every ok fan-out leg joined to its shard-side server span.
	missing, incomplete := 0, 0
	for _, id := range sum.ObsTraceIDs {
		tr, ok := byID[id]
		if !ok {
			missing++
			continue
		}
		if !router.Analyze(tr).Complete {
			incomplete++
		}
	}
	if missing > 0 {
		bad = append(bad, fmt.Sprintf("%d of %d sampled requests left no stitched trace", missing, len(sum.ObsTraceIDs)))
	}
	if incomplete > 0 {
		bad = append(bad, fmt.Sprintf("%d of %d sampled requests stitched incompletely (ok legs missing their shard span)", incomplete, len(sum.ObsTraceIDs)))
	}

	if opts.ClusterReplicas > 1 {
		// Fault attribution, replicated topology: the only injected fault
		// is the replica-0 outage window, and failover absorbs it — so
		// every fan-out LEG must read ok, while the error and breaker_open
		// records live on router.attempt spans that must all point at
		// replica 0 (errors only inside the outage window; an open breaker
		// can linger past it until the prober re-closes it).
		errorAttempts, misattributed, badLegs := 0, 0, 0
		for _, tr := range sum.ClusterTraces {
			for _, s := range tr.Spans {
				switch s.Name {
				case "router.shard":
					if out := s.Attr("outcome"); out != "" && out != "ok" {
						badLegs++
					}
				case "router.attempt":
					switch s.Attr("outcome") {
					case "error":
						errorAttempts++
						if s.Attr("replica") != "0" || !inReplicaOutage(s.Start) {
							misattributed++
						}
					case "breaker_open":
						if s.Attr("replica") != "0" {
							misattributed++
						}
					}
				}
			}
		}
		if badLegs > 0 {
			bad = append(bad, fmt.Sprintf("%d stitched fan-out legs ended non-ok (replication must absorb every replica fault)", badLegs))
		}
		if errorAttempts == 0 {
			bad = append(bad, "no stitched trace carries an error attempt despite the replica-outage window")
		}
		if misattributed > 0 {
			bad = append(bad, fmt.Sprintf("%d attempts attribute faults outside the injected schedule (errors must hit replica 0 inside the outage window, open breakers only replica 0)", misattributed))
		}
	} else {
		// Fault attribution, legacy single-replica topology: the only
		// injected server-side fault is the shard-0 outage on the
		// error-burst day, so every error leg must point at shard 0 during
		// day 1, and every breaker_open leg at shard 0 (the breaker can
		// linger into the next day until its half-open probe re-closes it).
		errorLegs, misattributed := 0, 0
		for _, tr := range sum.ClusterTraces {
			for _, s := range tr.Spans {
				if s.Name != "router.shard" {
					continue
				}
				day := int(s.Start.Sub(soakEpoch) / (24 * time.Hour))
				switch s.Attr("outcome") {
				case "error":
					errorLegs++
					if s.Attr("shard") != "0" || day != 1 {
						misattributed++
					}
				case "breaker_open":
					if s.Attr("shard") != "0" {
						misattributed++
					}
				}
			}
		}
		if errorLegs == 0 {
			bad = append(bad, "no stitched trace carries an error leg despite the shard-outage day")
		}
		if misattributed > 0 {
			bad = append(bad, fmt.Sprintf("%d legs attribute faults outside the injected schedule (errors must hit shard 0 on day 1, open breakers only shard 0)", misattributed))
		}
	}

	// Probe traces: the healed cluster must answer each probe from every
	// shard, completely stitched.
	for _, id := range sum.ProbeTraceIDs {
		tr, ok := byID[id]
		if !ok {
			bad = append(bad, fmt.Sprintf("probe trace %s missing from the stitched set", id))
			continue
		}
		rep := router.Analyze(tr)
		if !rep.Complete || rep.Outcomes["ok"] != opts.ClusterShards {
			bad = append(bad, fmt.Sprintf("probe trace %s degenerate: complete=%v outcomes=%v", id, rep.Complete, rep.Outcomes))
		}
	}
	if len(sum.ClusterTracezJSON) == 0 || len(sum.ClusterChrome) == 0 {
		bad = append(bad, "probe exports empty — nothing for the byte-identity check to compare")
	}
	if strings.Contains(string(sum.ClusterTracezJSON), `"nodes"`) {
		bad = append(bad, "filtered /clustertracez body leaks ring totals — it cannot be byte-deterministic")
	}
	return bad
}
