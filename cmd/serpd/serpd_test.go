package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"geoserp/internal/serp"
)

func TestBuildServerAndServe(t *testing.T) {
	srv, eng, err := buildServer(options{
		Addr:        "127.0.0.1:0",
		Seed:        7,
		Datacenters: 2,
		RateBurst:   1000,
		RatePerMin:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(srv.URL() + "/search?q=Coffee&ll=41.4993,-81.6944")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	page, err := serp.ParseHTML(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if page.Query != "Coffee" {
		t.Fatalf("query = %q", page.Query)
	}
	if eng.Served() != 1 {
		t.Fatalf("served = %d", eng.Served())
	}
	if len(eng.Datacenters()) != 2 {
		t.Fatalf("datacenters = %v", eng.Datacenters())
	}
}

func TestBuildServerQuietModeDeterministic(t *testing.T) {
	srv, _, err := buildServer(options{Addr: "127.0.0.1:0", Quiet: true,
		RateBurst: 1000, RatePerMin: 100000})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	fetch := func() string {
		resp, err := http.Get(srv.URL() + "/search?q=School&ll=41.4993,-81.6944")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if fetch() != fetch() {
		t.Fatal("quiet mode served different pages for identical requests")
	}
}

func TestBuildServerAccessLog(t *testing.T) {
	var lines []string
	srv, _, err := buildServer(options{Addr: "127.0.0.1:0",
		RateBurst: 1000, RatePerMin: 100000,
		Logf: func(format string, args ...any) {
			lines = append(lines, format)
		}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lines) != 1 || !strings.Contains(lines[0], "status=") {
		t.Fatalf("access log lines = %v", lines)
	}
}

func TestBuildServerBadAddr(t *testing.T) {
	if _, _, err := buildServer(options{Addr: "256.256.256.256:99999"}); err == nil {
		t.Fatal("bad address accepted")
	}
}
