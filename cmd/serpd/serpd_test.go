package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"geoserp/internal/serp"
	"geoserp/internal/telemetry"
)

func TestBuildServerAndServe(t *testing.T) {
	srv, eng, err := buildServer(options{
		Addr:        "127.0.0.1:0",
		Seed:        7,
		Datacenters: 2,
		RateBurst:   1000,
		RatePerMin:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(srv.URL() + "/search?q=Coffee&ll=41.4993,-81.6944")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	page, err := serp.ParseHTML(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if page.Query != "Coffee" {
		t.Fatalf("query = %q", page.Query)
	}
	if eng.Served() != 1 {
		t.Fatalf("served = %d", eng.Served())
	}
	if len(eng.Datacenters()) != 2 {
		t.Fatalf("datacenters = %v", eng.Datacenters())
	}
}

func TestBuildServerQuietModeDeterministic(t *testing.T) {
	srv, _, err := buildServer(options{Addr: "127.0.0.1:0", Quiet: true,
		RateBurst: 1000, RatePerMin: 100000})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	fetch := func() string {
		resp, err := http.Get(srv.URL() + "/search?q=School&ll=41.4993,-81.6944")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if fetch() != fetch() {
		t.Fatal("quiet mode served different pages for identical requests")
	}
}

func TestBuildServerAccessLog(t *testing.T) {
	var buf syncBuffer
	srv, _, err := buildServer(options{Addr: "127.0.0.1:0",
		RateBurst: 1000, RatePerMin: 100000,
		Logger: telemetry.NewLogger(&buf, "text")})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out := buf.String(); !strings.Contains(out, "status=200") || !strings.Contains(out, "path=/healthz") {
		t.Fatalf("access log = %q", out)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: the access log is written
// from the server goroutine while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMetricszAndPprofEndpoints(t *testing.T) {
	srv, _, err := buildServer(options{Addr: "127.0.0.1:0",
		RateBurst: 1000, RatePerMin: 100000})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(srv.URL() + "/search?q=Coffee&ll=41.4993,-81.6944")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL() + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{"serpd_http_requests_total", "engine_served_total 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, out)
		}
	}

	pprofSrv, pprofAddr, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pprofSrv.Close()
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestBuildServerBadAddr(t *testing.T) {
	if _, _, err := buildServer(options{Addr: "256.256.256.256:99999"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestBuildShardServer exercises serpd's shard mode end to end: the node
// serves its partition over /shard/search with the standard operability
// endpoints, and rejects an out-of-range shard ID at startup.
func TestBuildShardServer(t *testing.T) {
	srv, sh, err := buildShardServer(options{
		Addr: "127.0.0.1:0", Seed: 7, ShardID: 1, ShardCount: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Shutdown(context.Background())
	if sh.Docs() == 0 {
		t.Fatal("shard owns no documents")
	}

	resp, err := http.Get(srv.URL() + "/shard/search?q=coffee&k=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard search status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "\"shard\":1") {
		t.Fatalf("shard response missing shard id: %s", body)
	}

	resp, err = http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	if _, _, err := buildShardServer(options{Addr: "127.0.0.1:0", ShardID: 3, ShardCount: 3}); err == nil {
		t.Fatal("out-of-range shard ID accepted")
	}
}
