// Command serpd runs the synthetic personalized search engine as a
// standalone HTTP service — the stand-in for Google Search that crawlers
// (cmd/crawl, the examples, or your own tooling) measure.
//
// Usage:
//
//	serpd [-addr 127.0.0.1:8080] [-seed 1] [-datacenters 3] [-rate-burst 30]
//	      [-verbose] [-log-format text|json] [-pprof-addr 127.0.0.1:6060]
//	      [-chaos-abort-rate 0] [-chaos-5xx-rate 0] [-chaos-truncate-rate 0]
//	      [-chaos-latency 0] [-chaos-seed 1]
//	      [-max-inflight 0] [-queue-depth 0] [-admission-service-time 1s]
//	      [-shard-count 0] [-shard-id 0] [-shard-replica 0] [-virtual-nodes 0]
//
// The -chaos-* flags make /search deliberately unreliable (fault
// injection) so crawler deployments can rehearse retries, failure budgets,
// and checkpoint resume against a real wire.
//
// The -max-inflight and -queue-depth flags arm admission control: at most
// max-inflight /search requests execute at once, queue-depth more wait in
// FIFO order, and the rest are shed with 503 plus a Retry-After hint
// derived from the backlog and -admission-service-time.
//
// With -shard-count N (and -shard-id K), serpd runs as one retrieval
// shard of an N-node cluster instead of a full engine: it regenerates the
// deterministic corpus from -seed, keeps the document slice the
// consistent-hash ring assigns shard K, and serves GET /shard/search for
// a cmd/serprouter coordinator to scatter-gather. With -shard-replica R
// the node additionally identifies as replica R of shard K — replicas
// serve byte-identical slices, so a router can spread load and fail over
// between them without changing any page. -virtual-nodes tunes the hash
// ring's virtual-node count (its deprecated spelling -ring-replicas is
// kept as an alias; "replicas" now means physical copies of a shard).
// The chaos, admission, and tracez flags apply to the shard endpoint
// unchanged; engine flags (-datacenters, -rate-burst, ...) are ignored in
// shard mode.
//
// Endpoints:
//
//	GET /search?q=<term>&ll=<lat>,<lon>[&format=json]
//	GET /healthz
//	GET /statz         JSON counters (backward-compatible shape)
//	GET /metricsz      Prometheus text exposition
//	GET /tracez        recent request spans (JSON; ?format=html for a
//	                   browsable view, ?limit=N to cap traces)
//
// With -pprof-addr, the net/http/pprof endpoints are served on a separate
// listener under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/router"
	"geoserp/internal/serpserver"
	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", "127.0.0.1:8080", "listen address")
	flag.Uint64Var(&opts.Seed, "seed", 1, "root seed for the synthetic web and noise")
	flag.IntVar(&opts.Datacenters, "datacenters", 3, "number of replica datacenters")
	flag.IntVar(&opts.Buckets, "buckets", 8, "number of A/B experiment buckets")
	flag.IntVar(&opts.RateBurst, "rate-burst", 30, "per-IP rate limit burst")
	flag.Float64Var(&opts.RatePerMin, "rate-per-minute", 10, "per-IP sustained requests per minute")
	flag.BoolVar(&opts.Quiet, "quiet", false, "disable all noise mechanisms (deterministic serving)")
	flag.StringVar(&opts.CorpusPath, "corpus", "", "custom query corpus JSON (default: the study's 240 terms)")
	flag.StringVar(&opts.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (off when empty)")
	flag.Uint64Var(&opts.Chaos.Seed, "chaos-seed", 1, "seed for fault-injection draws")
	flag.Float64Var(&opts.Chaos.AbortRate, "chaos-abort-rate", 0, "probability a /search connection is severed before responding")
	flag.Float64Var(&opts.Chaos.ServerErrorRate, "chaos-5xx-rate", 0, "probability a /search request is answered 500")
	flag.Float64Var(&opts.Chaos.TruncateRate, "chaos-truncate-rate", 0, "probability a /search response body is cut off mid-stream")
	flag.DurationVar(&opts.Chaos.Latency, "chaos-latency", 0, "extra latency added to every /search request")
	flag.IntVar(&opts.Admission.MaxInflight, "max-inflight", 0, "max concurrent /search requests admitted (0 disables admission control)")
	flag.IntVar(&opts.Admission.QueueDepth, "queue-depth", 0, "how many /search requests may queue for an admission slot")
	flag.DurationVar(&opts.Admission.ServiceTime, "admission-service-time", time.Second, "per-request service-time estimate behind Retry-After hints")
	flag.IntVar(&opts.TracezCapacity, "tracez-capacity", telemetry.DefaultSpanCapacity, "span ring capacity behind GET /tracez (0 disables tracing)")
	flag.IntVar(&opts.ShardCount, "shard-count", 0, "run as one shard of an N-shard cluster instead of a full engine (0 disables shard mode)")
	flag.IntVar(&opts.ShardID, "shard-id", 0, "this node's shard ID (0-based, requires -shard-count)")
	flag.IntVar(&opts.ShardReplica, "shard-replica", 0, "this node's replica ID within its shard's replica set (0-based; replicas serve identical slices)")
	flag.IntVar(&opts.VirtualNodes, "virtual-nodes", 0, "consistent-hash virtual nodes per shard (0 selects the default; all cluster nodes must agree)")
	flag.IntVar(&opts.VirtualNodes, "ring-replicas", 0, "deprecated alias for -virtual-nodes (\"replicas\" now means physical copies of a shard)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("verbose", false, "log every request")
	wideEvents := flag.Bool("wide-events", false, "emit one wide-event request log line per /search")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, *logFormat)
	if *verbose {
		opts.Logger = logger
	}
	if *wideEvents {
		opts.WideLogger = logger
	}

	var (
		srv *serpserver.Server
		eng *engine.Engine
		err error
	)
	if opts.ShardCount > 0 {
		var sh *router.ShardHandler
		srv, sh, err = buildShardServer(opts)
		if err == nil {
			logger.Info("serving retrieval shard",
				"url", srv.URL(), "seed", opts.Seed,
				"shard", opts.ShardID, "of", opts.ShardCount, "docs", sh.Docs())
			logger.Info("endpoints ready",
				"try", srv.URL()+"/shard/search?q=Coffee&k=5",
				"metrics", srv.URL()+"/metricsz")
		}
	} else {
		srv, eng, err = buildServer(opts)
		if err == nil {
			logger.Info("serving synthetic search",
				"url", srv.URL(), "seed", opts.Seed, "datacenters", opts.Datacenters)
			logger.Info("endpoints ready",
				"try", srv.URL()+"/search?q=Coffee&ll=41.4993,-81.6944",
				"metrics", srv.URL()+"/metricsz")
		}
	}
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}

	if opts.PprofAddr != "" {
		pprofSrv, pprofAddr, perr := startPprof(opts.PprofAddr)
		if perr != nil {
			logger.Error("pprof startup failed", "err", perr)
			os.Exit(1)
		}
		defer pprofSrv.Close()
		logger.Info("pprof enabled", "addr", "http://"+pprofAddr+"/debug/pprof/")
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if err := srv.Serve(); err != nil {
			logger.Error("serve", "err", err)
		}
	}()
	<-done
	fmt.Fprintln(os.Stderr)
	if eng != nil {
		logger.Info("shutting down",
			"served", eng.Served(), "rate_limited", eng.RateLimited())
	} else {
		logger.Info("shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}
