// Command serpd runs the synthetic personalized search engine as a
// standalone HTTP service — the stand-in for Google Search that crawlers
// (cmd/crawl, the examples, or your own tooling) measure.
//
// Usage:
//
//	serpd [-addr 127.0.0.1:8080] [-seed 1] [-datacenters 3] [-rate-burst 30] [-verbose]
//
// Endpoints:
//
//	GET /search?q=<term>&ll=<lat>,<lon>[&format=json]
//	GET /healthz
//	GET /statz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", "127.0.0.1:8080", "listen address")
	flag.Uint64Var(&opts.Seed, "seed", 1, "root seed for the synthetic web and noise")
	flag.IntVar(&opts.Datacenters, "datacenters", 3, "number of replica datacenters")
	flag.IntVar(&opts.Buckets, "buckets", 8, "number of A/B experiment buckets")
	flag.IntVar(&opts.RateBurst, "rate-burst", 30, "per-IP rate limit burst")
	flag.Float64Var(&opts.RatePerMin, "rate-per-minute", 10, "per-IP sustained requests per minute")
	flag.BoolVar(&opts.Quiet, "quiet", false, "disable all noise mechanisms (deterministic serving)")
	flag.StringVar(&opts.CorpusPath, "corpus", "", "custom query corpus JSON (default: the study's 240 terms)")
	verbose := flag.Bool("verbose", false, "log every request")
	flag.Parse()
	if *verbose {
		opts.Logf = log.Printf
	}

	srv, eng, err := buildServer(opts)
	if err != nil {
		log.Fatalf("serpd: %v", err)
	}
	log.Printf("serpd: serving synthetic search on %s (seed=%d, datacenters=%d)",
		srv.URL(), opts.Seed, opts.Datacenters)
	log.Printf("serpd: try %s/search?q=Coffee&ll=41.4993,-81.6944", srv.URL())

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if err := srv.Serve(); err != nil {
			log.Printf("serpd: serve: %v", err)
		}
	}()
	<-done
	fmt.Fprintln(os.Stderr)
	log.Printf("serpd: shutting down (%d pages served, %d rate-limited)",
		eng.Served(), eng.RateLimited())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("serpd: shutdown: %v", err)
	}
}
