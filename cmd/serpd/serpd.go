package main

import (
	"geoserp/internal/engine"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
)

// options collects the serpd command's inputs.
type options struct {
	Addr        string
	Seed        uint64
	Datacenters int
	Buckets     int
	RateBurst   int
	RatePerMin  float64
	Quiet       bool
	// CorpusPath loads a custom query corpus (JSON) instead of the
	// study's 240 terms.
	CorpusPath string
	// Logf, when set, receives access-log lines.
	Logf func(format string, args ...any)
}

// buildServer constructs the engine and a bound (not yet serving) server.
func buildServer(opts options) (*serpserver.Server, *engine.Engine, error) {
	cfg := engine.DefaultConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Datacenters > 0 {
		cfg.Datacenters = opts.Datacenters
	}
	if opts.Buckets > 0 {
		cfg.Buckets = opts.Buckets
	}
	if opts.RateBurst > 0 {
		cfg.RateBurst = opts.RateBurst
	}
	if opts.RatePerMin > 0 {
		cfg.RatePerMinute = opts.RatePerMin
	}
	if opts.Quiet {
		cfg.WebJitterSigma = 0
		cfg.PlaceJitterSigma = 0
		cfg.NewsJitterSigma = 0
		cfg.Buckets = 1
		cfg.BucketWeightSpread = 0
		cfg.ReplicaSkew = 0
	}
	var eng *engine.Engine
	if opts.CorpusPath != "" {
		corpus, err := queries.LoadCorpus(opts.CorpusPath)
		if err != nil {
			return nil, nil, err
		}
		eng = engine.NewCustom(cfg, simclock.Wall(), engine.WithCorpus(corpus))
	} else {
		eng = engine.New(cfg, simclock.Wall())
	}
	var hopts []serpserver.HandlerOption
	if opts.Logf != nil {
		hopts = append(hopts, serpserver.WithAccessLog(opts.Logf))
	}
	srv, err := serpserver.Listen(opts.Addr, serpserver.NewHandler(eng, hopts...))
	if err != nil {
		return nil, nil, err
	}
	return srv, eng, nil
}
