package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"

	"geoserp/internal/engine"
	"geoserp/internal/queries"
	"geoserp/internal/router"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// options collects the serpd command's inputs.
type options struct {
	Addr        string
	Seed        uint64
	Datacenters int
	Buckets     int
	RateBurst   int
	RatePerMin  float64
	Quiet       bool
	// CorpusPath loads a custom query corpus (JSON) instead of the
	// study's 240 terms.
	CorpusPath string
	// Logger, when set, receives one structured access-log record per
	// request.
	Logger *slog.Logger
	// WideLogger, when set, receives one wide-event "search.wide" record
	// per /search — the canonical request log on a single structured line.
	WideLogger *slog.Logger
	// PprofAddr, when set, serves net/http/pprof on a separate listener.
	PprofAddr string
	// Chaos configures deliberate fault injection on /search (the
	// -chaos-* flags); zero value disables it.
	Chaos serpserver.ChaosConfig
	// Admission configures the /search concurrency gate (the
	// -max-inflight and -queue-depth flags); zero value admits
	// everything.
	Admission serpserver.AdmissionConfig
	// TracezCapacity bounds the span ring behind GET /tracez (<=0
	// disables request tracing and the endpoint).
	TracezCapacity int
	// ShardCount > 0 switches serpd into shard-node mode: instead of a
	// full engine it serves GET /shard/search over its slice of a
	// ShardCount-way document partition, for a cmd/serprouter coordinator
	// to scatter-gather. ShardID selects which slice (0-based). Chaos,
	// admission, and tracez flags apply to the shard endpoint unchanged.
	ShardCount int
	ShardID    int
	// ShardReplica is this node's replica ID within its shard's replica
	// set (0-based). Replicas serve identical slices; the ID only labels
	// this node's spans and /shard/search responses so a coordinator can
	// verify routing and attribute failover.
	ShardReplica int
	// VirtualNodes is the consistent-hash ring's virtual-node count per
	// shard; every node of one cluster (and its router) must agree on it.
	// <= 0 selects router.DefaultVirtualNodes. Not to be confused with
	// ShardReplica: virtual nodes spread one shard around the hash ring,
	// replicas are extra physical copies of a shard.
	VirtualNodes int
}

// buildServer constructs the engine and a bound (not yet serving) server.
// Engine and HTTP front end share one telemetry registry, exposed at
// /metricsz on the returned server.
func buildServer(opts options) (*serpserver.Server, *engine.Engine, error) {
	cfg := engine.DefaultConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Datacenters > 0 {
		cfg.Datacenters = opts.Datacenters
	}
	if opts.Buckets > 0 {
		cfg.Buckets = opts.Buckets
	}
	if opts.RateBurst > 0 {
		cfg.RateBurst = opts.RateBurst
	}
	if opts.RatePerMin > 0 {
		cfg.RatePerMinute = opts.RatePerMin
	}
	if opts.Quiet {
		cfg.WebJitterSigma = 0
		cfg.PlaceJitterSigma = 0
		cfg.NewsJitterSigma = 0
		cfg.Buckets = 1
		cfg.BucketWeightSpread = 0
		cfg.ReplicaSkew = 0
	}
	reg := telemetry.NewRegistry()
	eopts := []engine.Option{engine.WithTelemetry(reg)}
	if opts.CorpusPath != "" {
		corpus, err := queries.LoadCorpus(opts.CorpusPath)
		if err != nil {
			return nil, nil, err
		}
		eopts = append(eopts, engine.WithCorpus(corpus))
	}
	eng := engine.NewCustom(cfg, simclock.Wall(), eopts...)
	var hopts []serpserver.HandlerOption
	if opts.Logger != nil {
		hopts = append(hopts, serpserver.WithLogger(opts.Logger))
	}
	if opts.WideLogger != nil {
		hopts = append(hopts, serpserver.WithWideEvents(opts.WideLogger))
	}
	if opts.TracezCapacity > 0 {
		hopts = append(hopts,
			serpserver.WithSpans(telemetry.NewSpanRecorder(opts.TracezCapacity, simclock.Wall())))
	}
	handler := serpserver.NewHandler(eng, hopts...)
	var root http.Handler = handler
	if opts.Chaos.Enabled() {
		root = serpserver.WithChaos(opts.Chaos, handler)
	}
	if opts.Admission.Enabled() {
		// Admission wraps outermost so even chaos-injected work cannot
		// bypass the concurrency gate.
		root = serpserver.WithAdmission(opts.Admission, handler, root)
	}
	srv, err := serpserver.Listen(opts.Addr, root)
	if err != nil {
		return nil, nil, err
	}
	return srv, eng, nil
}

// buildShardServer constructs a shard node: the deterministic corpus is
// regenerated from the seed, the consistent-hash ring assigns this node
// its document slice (with full-corpus IDF statistics, so per-shard scores
// are bit-identical to a monolith's), and the /shard/search endpoint is
// wrapped in the same chaos and admission middleware a full serpd gets.
func buildShardServer(opts options) (*serpserver.Server, *router.ShardHandler, error) {
	if opts.ShardID < 0 || opts.ShardID >= opts.ShardCount {
		return nil, nil, fmt.Errorf("shard-id %d out of range for shard-count %d", opts.ShardID, opts.ShardCount)
	}
	seed := uint64(1)
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	var corpus *queries.Corpus
	if opts.CorpusPath != "" {
		c, err := queries.LoadCorpus(opts.CorpusPath)
		if err != nil {
			return nil, nil, err
		}
		corpus = c
	}
	view := router.BuildShardIndex(seed, corpus, opts.ShardID, opts.ShardCount, opts.VirtualNodes)

	reg := telemetry.NewRegistry()
	var spans *telemetry.SpanRecorder
	shOpts := []router.ShardOption{
		router.WithShardTelemetry(reg),
		router.WithShardReplica(opts.ShardReplica),
	}
	if opts.TracezCapacity > 0 {
		spans = telemetry.NewSpanRecorder(opts.TracezCapacity, simclock.Wall())
		shOpts = append(shOpts, router.WithShardSpans(spans))
	}
	sh := router.NewShardHandler(opts.ShardID, view, shOpts...)
	var root http.Handler = sh
	if opts.Chaos.Enabled() {
		root = serpserver.NewChaos(opts.Chaos, reg, spans, root)
	}
	if opts.Admission.Enabled() {
		adm := serpserver.NewAdmission(opts.Admission, reg, spans, root)
		if g, ok := adm.(*serpserver.Admission); ok {
			// Deadline sheds raised inside the shard handler advertise the
			// gate's live backlog-derived Retry-After instead of a constant.
			sh.SetRetryAfter(g.RetryAfter)
		}
		root = adm
	}
	srv, err := serpserver.Listen(opts.Addr, root)
	if err != nil {
		return nil, nil, err
	}
	return srv, sh, nil
}

// startPprof binds addr and serves the net/http/pprof endpoints on it in
// the background, returning the server for shutdown. Profiling gets its
// own listener so it never shares a port with production traffic.
func startPprof(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pprof: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: telemetry.PprofMux()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
