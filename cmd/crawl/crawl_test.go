package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geoserp/internal/statz"
	"geoserp/internal/storage"
)

func TestRunCrawlInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "campaign.jsonl")
	n, err := runCrawl(options{
		Out:              out,
		TermsPerCategory: 2,
		Days:             1,
		Machines:         44,
		Seed:             1,
		PinnedDatacenter: "dc-0",
		Wait:             11 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// (2 local + 2 controversial + 2 politicians) × 59 locations × 2 roles × 1 day.
	want := 6 * 59 * 2
	if n != want {
		t.Fatalf("observations = %d, want %d", n, want)
	}
	obs, err := storage.LoadJSONL(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != want {
		t.Fatalf("file has %d observations, want %d", len(obs), want)
	}
	for _, o := range obs {
		if o.Datacenter != "dc-0" {
			t.Fatalf("observation served by %q, want dc-0", o.Datacenter)
		}
	}
}

func TestRunCrawlCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := options{
		Out:              filepath.Join(dir, "a.jsonl"),
		TermsPerCategory: 1,
		Days:             1,
		Machines:         44,
		Seed:             7,
		PinnedDatacenter: "dc-0",
		Wait:             11 * time.Minute,
	}
	if _, err := runCrawl(opts); err != nil {
		t.Fatal(err)
	}
	for _, leftover := range []string{opts.Out + ".ckpt", opts.Out + ".partial"} {
		if _, err := os.Stat(leftover); err == nil {
			t.Fatalf("%s survived a successful campaign", leftover)
		}
	}
	ref, err := os.ReadFile(opts.Out)
	if err != nil {
		t.Fatal(err)
	}

	// A stale cursor from some earlier run must not steer a fresh campaign.
	stale := opts
	stale.Out = filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(stale.Out+".ckpt", []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCrawl(stale); err != nil {
		t.Fatalf("fresh run tripped over stale checkpoint: %v", err)
	}
	got, err := os.ReadFile(stale.Out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatal("fresh run with stale checkpoint diverged from reference")
	}

	// -resume with no cursor on disk is just a fresh run.
	resumed := stale
	resumed.Out = filepath.Join(dir, "c.jsonl")
	resumed.Resume = true
	if _, err := runCrawl(resumed); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(resumed.Out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatal("-resume without a checkpoint diverged from a fresh run")
	}
}

func TestRunCrawlValidation(t *testing.T) {
	if _, err := runCrawl(options{Out: ""}); err == nil {
		t.Fatal("empty output path accepted")
	}
	if _, err := runCrawl(options{Out: "/nonexistent-dir/x.jsonl", TermsPerCategory: 1, Days: 1}); err == nil {
		t.Fatal("unwritable output path accepted")
	}
}

func TestRunCrawlAgainstDeadServer(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.jsonl")
	_, err := runCrawl(options{
		Out:              out,
		Server:           "http://127.0.0.1:1",
		TermsPerCategory: 1,
		Days:             1,
		Wait:             time.Millisecond,
	})
	if err == nil {
		t.Fatal("crawl against dead server succeeded")
	}
}

func TestRunCrawlCustomCorpus(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "corpus.json")
	doc := `[
	  {"term": "Coffee", "category": "local"},
	  {"term": "Health", "category": "controversial"},
	  {"term": "Barack Obama", "category": "politician"}
	]`
	if err := os.WriteFile(corpusPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "obs.jsonl.gz")
	n, err := runCrawl(options{
		Out:        out,
		CorpusPath: corpusPath,
		Days:       1,
		Machines:   44,
		Wait:       11 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 terms × 59 locations × 2 roles.
	if want := 3 * 59 * 2; n != want {
		t.Fatalf("observations = %d, want %d", n, want)
	}
	obs, err := storage.LoadJSONL(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != n {
		t.Fatalf("gzip file has %d observations", len(obs))
	}
	if _, err := runCrawl(options{Out: out, CorpusPath: filepath.Join(dir, "missing.json"), Days: 1}); err == nil {
		t.Fatal("missing corpus accepted")
	}
}

// TestRunCrawlStatzDeterminism: the -statz-out snapshot is a deterministic
// artifact of (seed, campaign shape). Two same-seed runs — one also serving
// the live /statz surface, one headless — must write byte-identical
// snapshots: serving the audit endpoint during the campaign cannot perturb
// the campaign itself. The snapshot carries the build block and a finished
// campaign progress summary.
func TestRunCrawlStatzDeterminism(t *testing.T) {
	dir := t.TempDir()
	base := options{
		TermsPerCategory: 1,
		Days:             2,
		Machines:         44,
		Seed:             3,
		PinnedDatacenter: "dc-0",
		Wait:             11 * time.Minute,
		DriftThreshold:   0.5,
	}

	live := base
	live.Out = filepath.Join(dir, "a.jsonl")
	live.StatzOut = filepath.Join(dir, "a-statz.json")
	live.StatzAddr = "127.0.0.1:0"
	if _, err := runCrawl(live); err != nil {
		t.Fatal(err)
	}
	headless := base
	headless.Out = filepath.Join(dir, "b.jsonl")
	headless.StatzOut = filepath.Join(dir, "b-statz.json")
	if _, err := runCrawl(headless); err != nil {
		t.Fatal(err)
	}

	aj, err := os.ReadFile(live.StatzOut)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := os.ReadFile(headless.StatzOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same-seed statz snapshots differ (%d vs %d bytes)", len(aj), len(bj))
	}

	var snap statz.Snapshot
	if err := json.Unmarshal(aj, &snap); err != nil {
		t.Fatalf("statz snapshot unparseable: %v", err)
	}
	if snap.Build.GoVersion == "" {
		t.Error("statz snapshot missing build.go_version")
	}
	if snap.Sweep == 0 || snap.Stream.Sweeps != snap.Sweep {
		t.Errorf("snapshot sweep=%d stream.sweeps=%d, want matching non-zero", snap.Sweep, snap.Stream.Sweeps)
	}
	if snap.Campaign == nil || snap.Campaign.SweepsDone != snap.Campaign.SweepsTotal || snap.Campaign.SweepsTotal == 0 {
		t.Errorf("campaign block = %+v, want finished plan", snap.Campaign)
	}
	if len(snap.Stream.Scorecard) == 0 {
		t.Error("statz snapshot carries no scorecard claims")
	}
	if len(snap.Errors) != 0 {
		t.Errorf("statz snapshot recorded ingest errors: %v", snap.Errors)
	}
}

// TestRunCrawlObservabilityArtifacts: -trace-out and -metrics-out land
// beside the data — a valid Chrome trace with the full span hierarchy,
// and a Prometheus snapshot carrying the campaign counters.
func TestRunCrawlObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	promPath := filepath.Join(dir, "snapshot.prom")
	_, err := runCrawl(options{
		Out:              filepath.Join(dir, "campaign.jsonl"),
		TermsPerCategory: 1,
		Days:             1,
		Machines:         44,
		Seed:             1,
		Wait:             11 * time.Minute,
		TraceOut:         tracePath,
		MetricsOut:       promPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{
		"crawler.campaign", "crawler.phase", "crawler.sweep",
		"browser.fetch", "serpd.request", "engine.rerank",
	} {
		if !names[want] {
			t.Fatalf("trace missing %q spans", want)
		}
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"crawler_queries_total", "browser_fetches_total",
		"engine_stage_duration_seconds_bucket{stage=\"rerank\"",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics snapshot missing %q:\n%s", want, prom)
		}
	}
}
