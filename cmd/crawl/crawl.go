package main

import (
	"fmt"
	"time"

	"geoserp/internal/crawler"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
)

// options collects the crawl command's inputs.
type options struct {
	// Server is an existing serpd URL; "" runs an in-process engine
	// under virtual time.
	Server string
	// Out is the JSONL output path.
	Out string
	// TermsPerCategory caps each category (0 = full corpus).
	TermsPerCategory int
	// Days per phase.
	Days int
	// Machines in the crawl /24.
	Machines int
	// Seed for the in-process engine.
	Seed uint64
	// PinnedDatacenter ("" = unpinned).
	PinnedDatacenter string
	// Wait between successive terms.
	Wait time.Duration
	// CorpusPath loads a custom query corpus (JSON) instead of the
	// study's 240 terms (in-process mode).
	CorpusPath string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// runCrawl executes the campaign and writes the observations; it returns
// the observation count.
func runCrawl(opts options) (int, error) {
	if opts.Out == "" {
		return 0, fmt.Errorf("crawl: output path must be set")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	corpus := queries.StudyCorpus()
	if opts.CorpusPath != "" {
		var err error
		corpus, err = queries.LoadCorpus(opts.CorpusPath)
		if err != nil {
			return 0, err
		}
	}
	ds := geo.StudyDataset()

	ccfg := crawler.DefaultConfig()
	if opts.Machines > 0 {
		ccfg.Machines = opts.Machines
	}
	ccfg.PinnedDatacenter = opts.PinnedDatacenter
	if opts.Wait > 0 {
		ccfg.WaitBetweenTerms = opts.Wait
	}

	take := func(qs []queries.Query) []queries.Query {
		if opts.TermsPerCategory > 0 && len(qs) > opts.TermsPerCategory {
			return qs[:opts.TermsPerCategory]
		}
		return qs
	}
	days := opts.Days
	if days <= 0 {
		days = 5
	}
	lc := append([]queries.Query{}, take(corpus.Category(queries.Local))...)
	lc = append(lc, take(corpus.Category(queries.Controversial))...)
	phases := []crawler.Phase{
		{Name: "local+controversial", Terms: lc, Granularities: geo.Granularities, Days: days},
		{Name: "politicians", Terms: take(corpus.Category(queries.Politician)), Granularities: geo.Granularities, Days: days},
	}

	var obs []storage.Observation
	var err error
	if opts.Server == "" {
		clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
		ecfg := engine.DefaultConfig()
		if opts.Seed != 0 {
			ecfg.Seed = opts.Seed
		}
		eng := engine.NewCustom(ecfg, clk, engine.WithCorpus(corpus))
		srv, lerr := serpserver.Listen("127.0.0.1:0", serpserver.NewHandler(eng))
		if lerr != nil {
			return 0, lerr
		}
		srv.Start()
		logf("crawl: in-process engine at %s", srv.URL())
		cr, cerr := crawler.New(ccfg, clk, srv.URL(), ds, corpus)
		if cerr != nil {
			return 0, cerr
		}
		cr.Progress = func(s string) { logf("crawl: %s", s) }
		obs, err = cr.RunCampaignVirtual(clk, phases)
	} else {
		logf("crawl: targeting live server %s (wall-clock waits apply!)", opts.Server)
		cr, cerr := crawler.New(ccfg, simclock.Wall(), opts.Server, ds, corpus)
		if cerr != nil {
			return 0, cerr
		}
		cr.Progress = func(s string) { logf("crawl: %s", s) }
		obs, err = cr.RunCampaign(phases)
	}
	if err != nil {
		return 0, fmt.Errorf("crawl: campaign: %w", err)
	}
	if err := storage.SaveJSONL(opts.Out, obs); err != nil {
		return 0, fmt.Errorf("crawl: save: %w", err)
	}
	return len(obs), nil
}
