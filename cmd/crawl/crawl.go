package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/crawler"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/statz"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// options collects the crawl command's inputs.
type options struct {
	// Server is an existing serpd URL; "" runs an in-process engine
	// under virtual time.
	Server string
	// Out is the JSONL output path.
	Out string
	// TermsPerCategory caps each category (0 = full corpus).
	TermsPerCategory int
	// Days per phase.
	Days int
	// Machines in the crawl /24.
	Machines int
	// Seed for the in-process engine.
	Seed uint64
	// PinnedDatacenter ("" = unpinned).
	PinnedDatacenter string
	// Wait between successive terms.
	Wait time.Duration
	// CorpusPath loads a custom query corpus (JSON) instead of the
	// study's 240 terms (in-process mode).
	CorpusPath string
	// Retries is the total fetch attempts per query (1 = no retries).
	Retries int
	// RetryBackoff is the linear backoff base between attempts.
	RetryBackoff time.Duration
	// FetchTimeout bounds each fetch attempt (0 = browser default).
	FetchTimeout time.Duration
	// FailureBudget is the per-round fraction of fetches allowed to fail
	// after retries before the campaign aborts (0 = strict).
	FailureBudget float64
	// ShedBudget is the per-round fraction of fetches allowed to end shed
	// by server admission control (0 = strict).
	ShedBudget float64
	// BreakerThreshold arms the per-browser circuit breaker (0 = off).
	BreakerThreshold int
	// BreakerCooldown is the breaker's open-state dwell.
	BreakerCooldown time.Duration
	// Deadline, when positive, is each fetch's end-to-end budget,
	// propagated to the server as an absolute X-Deadline-Ms instant.
	Deadline time.Duration
	// MaxBody caps how many response-body bytes a browser reads
	// (0 = browser default); oversized pages fail permanently.
	MaxBody int64
	// Checkpoint is the campaign cursor path ("" derives Out + ".ckpt").
	Checkpoint string
	// Resume restarts from an existing checkpoint instead of from zero.
	Resume bool
	// TraceOut, when set, writes the campaign timeline (campaign, phase,
	// sweep, fetch-attempt, server, and engine-stage spans) as a Chrome
	// trace-event JSON file loadable in Perfetto or chrome://tracing.
	TraceOut string
	// TraceCapacity bounds the span ring buffer (0 = a campaign-sized
	// default). Spans beyond it evict the oldest.
	TraceCapacity int
	// MetricsOut, when set, writes a final Prometheus text-format metrics
	// snapshot at campaign end — the same numbers a live /metricsz scrape
	// would have shown.
	MetricsOut string
	// StatzAddr, when set, serves the live audit surface (/statz,
	// /metricsz, and — with -trace-out — /tracez) on that address for the
	// duration of the campaign.
	StatzAddr string
	// StatzOut, when set, writes the final /statz snapshot JSON at
	// campaign end. Setting it also enables streaming aggregation even
	// without a listen address.
	StatzOut string
	// DriftThreshold arms the stream's sweep-over-sweep drift tracker
	// (0 = off): a scope whose running personalization mean moves further
	// than this from its anchor emits a drift event.
	DriftThreshold float64
	// Logger receives structured progress records (nil = silent). At
	// Debug level it also gets one record per fetch with the minted
	// trace ID.
	Logger *slog.Logger
}

// runCrawl executes the campaign and writes the observations; it returns
// the observation count.
func runCrawl(opts options) (int, error) {
	if opts.Out == "" {
		return 0, fmt.Errorf("crawl: output path must be set")
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	corpus := queries.StudyCorpus()
	if opts.CorpusPath != "" {
		var err error
		corpus, err = queries.LoadCorpus(opts.CorpusPath)
		if err != nil {
			return 0, err
		}
	}
	ds := geo.StudyDataset()

	ccfg := crawler.DefaultConfig()
	if opts.Machines > 0 {
		ccfg.Machines = opts.Machines
	}
	ccfg.PinnedDatacenter = opts.PinnedDatacenter
	if opts.Wait > 0 {
		ccfg.WaitBetweenTerms = opts.Wait
	}
	ccfg.RetryAttempts = opts.Retries
	ccfg.RetryBackoff = opts.RetryBackoff
	ccfg.FetchTimeout = opts.FetchTimeout
	ccfg.FailureBudget = opts.FailureBudget
	ccfg.ShedBudget = opts.ShedBudget
	ccfg.BreakerThreshold = opts.BreakerThreshold
	ccfg.BreakerCooldown = opts.BreakerCooldown
	ccfg.DeadlineBudget = opts.Deadline
	ccfg.MaxBodyBytes = opts.MaxBody

	take := func(qs []queries.Query) []queries.Query {
		if opts.TermsPerCategory > 0 && len(qs) > opts.TermsPerCategory {
			return qs[:opts.TermsPerCategory]
		}
		return qs
	}
	days := opts.Days
	if days <= 0 {
		days = 5
	}
	lc := append([]queries.Query{}, take(corpus.Category(queries.Local))...)
	lc = append(lc, take(corpus.Category(queries.Controversial))...)
	phases := []crawler.Phase{
		{Name: "local+controversial", Terms: lc, Granularities: geo.Granularities, Days: days},
		{Name: "politicians", Terms: take(corpus.Category(queries.Politician)), Granularities: geo.Granularities, Days: days},
	}

	// The campaign checkpoints after every completed term sweep: the
	// cursor goes to ckptPath, partial observations accumulate beside the
	// final output. Both files are removed once the campaign lands.
	ckptPath := opts.Checkpoint
	if ckptPath == "" {
		ckptPath = opts.Out + ".ckpt"
	}
	partialPath := opts.Out + ".partial"

	reg := telemetry.NewRegistry()
	var obs []storage.Observation
	var err error
	var cr *crawler.Crawler
	var spans *telemetry.SpanRecorder
	var stz *statzRuntime
	defer func() { stz.stop() }()
	if opts.Server == "" {
		clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
		spans = newCampaignRecorder(opts, clk)
		ecfg := engine.DefaultConfig()
		if opts.Seed != 0 {
			ecfg.Seed = opts.Seed
		}
		// Engine, server, and crawler share one registry, so -metrics-out
		// snapshots the whole stack — engine stage histograms included.
		eng := engine.NewCustom(ecfg, clk, engine.WithCorpus(corpus), engine.WithTelemetry(reg))
		var handlerOpts []serpserver.HandlerOption
		if spans != nil {
			handlerOpts = append(handlerOpts, serpserver.WithSpans(spans))
		}
		srv, lerr := serpserver.Listen("127.0.0.1:0", serpserver.NewHandler(eng, handlerOpts...))
		if lerr != nil {
			return 0, lerr
		}
		srv.Start()
		logger.Info("in-process engine ready", "url", srv.URL())
		cr, err = crawler.New(ccfg, clk, srv.URL(), ds, corpus)
		if err != nil {
			return 0, err
		}
		cr.Logger, cr.Telemetry, cr.Spans = logger, reg, spans
		if err := setupCheckpoint(cr, opts, ckptPath, partialPath, logger); err != nil {
			return 0, err
		}
		if stz, err = setupStatz(cr, opts, clk, reg, spans, logger); err != nil {
			return 0, err
		}
		campaignStart := clk.Now()
		obs, err = cr.RunCampaignVirtual(clk, phases)
		if err == nil {
			// The virtual elapsed time is the campaign's simulated schedule
			// (e.g. "30 days"), not how long the hardware took — main logs
			// the wall-clock elapsed separately.
			logger.Info("virtual campaign complete",
				"virtual_elapsed", clk.Now().Sub(campaignStart).String())
		}
	} else {
		logger.Info("targeting live server (wall-clock waits apply)", "server", opts.Server)
		spans = newCampaignRecorder(opts, simclock.Wall())
		cr, err = crawler.New(ccfg, simclock.Wall(), opts.Server, ds, corpus)
		if err != nil {
			return 0, err
		}
		cr.Logger, cr.Telemetry, cr.Spans = logger, reg, spans
		if err := setupCheckpoint(cr, opts, ckptPath, partialPath, logger); err != nil {
			return 0, err
		}
		if stz, err = setupStatz(cr, opts, simclock.Wall(), reg, spans, logger); err != nil {
			return 0, err
		}
		obs, err = cr.RunCampaign(phases)
	}
	if err != nil {
		return 0, fmt.Errorf("crawl: campaign (restartable with -resume): %w", err)
	}
	if err := storage.SaveJSONL(opts.Out, obs); err != nil {
		return 0, fmt.Errorf("crawl: save: %w", err)
	}
	// The full output landed; the crash-recovery state is now redundant.
	os.Remove(ckptPath)
	os.Remove(partialPath)
	if opts.TraceOut != "" {
		if err := writeTraceFile(opts.TraceOut, spans); err != nil {
			return 0, err
		}
		logger.Info("campaign trace written", "path", opts.TraceOut, "spans", spans.Len())
	}
	if opts.MetricsOut != "" {
		if err := writeMetricsFile(opts.MetricsOut, reg); err != nil {
			return 0, err
		}
		logger.Info("metrics snapshot written", "path", opts.MetricsOut)
	}
	if opts.StatzOut != "" {
		if err := stz.writeFinal(opts.StatzOut); err != nil {
			return 0, err
		}
		logger.Info("statz snapshot written", "path", opts.StatzOut)
	}
	logTelemetrySummary(logger, reg, len(obs))
	return len(obs), nil
}

// newCampaignRecorder builds the span ring for -trace-out and the live
// audit surface's /tracez (nil when both are off). The default capacity
// is campaign-sized: large enough that scaled-down runs never wrap, so
// the written timeline is complete and byte-deterministic.
func newCampaignRecorder(opts options, clk simclock.Clock) *telemetry.SpanRecorder {
	if opts.TraceOut == "" && opts.StatzAddr == "" {
		return nil
	}
	capacity := opts.TraceCapacity
	if capacity <= 0 {
		capacity = 1 << 17
	}
	return telemetry.NewSpanRecorder(capacity, clk)
}

// writeTraceFile dumps the recorded spans in Chrome trace-event format.
func writeTraceFile(path string, spans *telemetry.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("crawl: trace out: %w", err)
	}
	if err := telemetry.WriteChromeTrace(f, spans.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("crawl: write trace: %w", err)
	}
	return f.Close()
}

// writeMetricsFile dumps the registry in Prometheus text format.
func writeMetricsFile(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("crawl: metrics out: %w", err)
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("crawl: write metrics: %w", err)
	}
	return f.Close()
}

// statzRuntime holds the live audit surface attached to a campaign: the
// streaming aggregator (as the crawler's sweep sink) and, when
// -statz-addr is set, the HTTP server exposing it.
type statzRuntime struct {
	rec *statz.Recorder
	srv *serpserver.Server
	clk simclock.Clock
}

// setupStatz attaches the streaming aggregator and, when requested, the
// live audit endpoint. It returns nil (a no-op runtime) when neither
// -statz-addr nor -statz-out asked for one.
func setupStatz(cr *crawler.Crawler, opts options, clk simclock.Clock, reg *telemetry.Registry, spans *telemetry.SpanRecorder, logger *slog.Logger) (*statzRuntime, error) {
	if opts.StatzAddr == "" && opts.StatzOut == "" {
		return nil, nil
	}
	stream := analysis.NewStream(
		analysis.WithDriftThreshold(opts.DriftThreshold),
		analysis.WithStreamTelemetry(reg),
		analysis.WithStreamSpans(spans),
	)
	rec := statz.NewRecorder(stream, statz.WithProgress(cr.ProgressState))
	cr.Sink = rec
	rt := &statzRuntime{rec: rec, clk: clk}
	if opts.StatzAddr != "" {
		srv, err := serpserver.Listen(opts.StatzAddr, statz.Mux(rec, clk.Now, reg, spans))
		if err != nil {
			return nil, fmt.Errorf("crawl: statz listen: %w", err)
		}
		srv.Start()
		rt.srv = srv
		logger.Info("live audit endpoint ready", "url", srv.URL()+"/statz")
	}
	return rt, nil
}

// stop drains the statz server, if one is listening. Safe on a nil
// runtime so error paths can defer it unconditionally.
func (rt *statzRuntime) stop() {
	if rt == nil || rt.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rt.srv.Shutdown(ctx)
	rt.srv = nil
}

// writeFinal writes the end-of-campaign snapshot for -statz-out.
func (rt *statzRuntime) writeFinal(path string) error {
	if rt == nil {
		return nil
	}
	data, err := rt.rec.SnapshotJSON(rt.clk.Now())
	if err != nil {
		return fmt.Errorf("crawl: statz snapshot: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("crawl: statz out: %w", err)
	}
	return nil
}

// setupCheckpoint arms campaign checkpointing: -resume picks up an
// existing cursor, a fresh run clears any stale one first so it cannot be
// honoured by accident.
func setupCheckpoint(cr *crawler.Crawler, opts options, ckptPath, partialPath string, logger *slog.Logger) error {
	if opts.Resume {
		if err := cr.Resume(ckptPath, partialPath); err != nil {
			return err
		}
		logger.Info("resuming from checkpoint", "checkpoint", ckptPath, "partial", partialPath)
		return nil
	}
	os.Remove(ckptPath)
	os.Remove(partialPath)
	cr.EnableCheckpoint(ckptPath, partialPath)
	return nil
}

// logTelemetrySummary emits the campaign's end-of-run counters — the same
// numbers a live /metricsz scrape would show — as one structured record.
func logTelemetrySummary(logger *slog.Logger, reg *telemetry.Registry, nObs int) {
	logger.Info("campaign telemetry",
		"observations", nObs,
		"queries_issued", reg.Counter("crawler_queries_total", "").Value(),
		"terms_completed", reg.Counter("crawler_terms_completed_total", "").Value(),
		"fetches", reg.Counter("browser_fetches_total", "").Value(),
		"rate_limited_429s", reg.Counter("browser_rate_limited_total", "").Value(),
		"retries", reg.Counter("browser_retries_total", "").Value(),
		"fetch_failures", reg.CounterVec("crawler_fetch_failures_total", "", "phase").Total(),
		"fetch_retries", reg.CounterVec("crawler_fetch_retries_total", "", "phase").Total(),
		"fetch_shed", reg.CounterVec("crawler_fetch_shed_total", "", "phase").Total())
}
