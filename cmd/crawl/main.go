// Command crawl runs a measurement campaign — the paper's §2 methodology —
// and writes the observations as JSON Lines for cmd/analyze.
//
// By default it spins up an in-process engine under a virtual clock, so
// "30 days" of crawling completes in seconds:
//
//	crawl -out campaign.jsonl                  # full study (240 terms × 59 locations × 5 days × 2 phases)
//	crawl -terms 8 -days 2 -out small.jsonl    # scaled-down campaign
//
// Against a live serpd instance (wall-clock time — slow by design, the
// crawler really does wait 11 minutes between queries):
//
//	crawl -server http://127.0.0.1:8080 -terms 2 -days 1 -out live.jsonl
//
// Campaigns are fail-soft: fetches retry with linear backoff (-retries,
// -retry-backoff, -fetch-timeout), and a sweep tolerates failures up to
// -failure-budget, recording them as failed observations instead of
// aborting. Progress is checkpointed after every completed term sweep;
// a killed campaign restarts from the cursor with -resume:
//
//	crawl -out campaign.jsonl            # writes campaign.jsonl.ckpt as it goes
//	crawl -out campaign.jsonl -resume    # picks up where the last run stopped
//
// Progress is logged as structured records (-log-format json for JSON);
// -v additionally logs every fetch with its minted trace ID, which joins
// the record to serpd's access log and the stored observation.
//
// Observability artifacts can land beside the data: -trace-out writes the
// campaign timeline (campaign → phase → sweep spans plus per-attempt fetch,
// server, and engine-stage spans) as a Chrome trace-event file for
// Perfetto/chrome://tracing, and -metrics-out writes a final Prometheus
// text snapshot of the campaign's counters:
//
//	crawl -terms 2 -days 1 -out small.jsonl -trace-out trace.json -metrics-out snapshot.prom
//
// A running campaign can be audited live: -statz-addr serves /statz — a
// streaming scorecard snapshot (JSON, or HTML for browsers) recomputed at
// every completed sweep, with ?sweep=N replaying earlier snapshots —
// plus /metricsz and (with -trace-out) /tracez. -statz-out writes the
// final snapshot beside the data, and -drift-threshold arms the
// sweep-over-sweep drift tracker:
//
//	crawl -terms 3 -days 1 -out small.jsonl -statz-addr 127.0.0.1:9090 -statz-out statz.json
package main

import (
	"flag"
	"log/slog"
	"os"
	"time"

	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.StringVar(&opts.Server, "server", "", "existing serpd URL (default: run an in-process engine under virtual time)")
	flag.StringVar(&opts.Out, "out", "campaign.jsonl", "output JSONL path")
	flag.IntVar(&opts.TermsPerCategory, "terms", 0, "terms per category (0 = full corpus)")
	flag.IntVar(&opts.Days, "days", 5, "days per phase")
	flag.IntVar(&opts.Machines, "machines", 44, "crawl machines in the /24")
	flag.Uint64Var(&opts.Seed, "seed", 1, "engine seed (in-process mode)")
	flag.StringVar(&opts.PinnedDatacenter, "datacenter", "dc-0", "pinned datacenter ('' = unpinned)")
	flag.DurationVar(&opts.Wait, "wait", 11*time.Minute, "spacing between successive terms")
	flag.StringVar(&opts.CorpusPath, "corpus", "", "custom query corpus JSON (default: the study's 240 terms)")
	flag.IntVar(&opts.Retries, "retries", 3, "fetch attempts per query (1 = no retries)")
	flag.DurationVar(&opts.RetryBackoff, "retry-backoff", 30*time.Second, "linear backoff base between fetch attempts")
	flag.DurationVar(&opts.FetchTimeout, "fetch-timeout", 30*time.Second, "per-attempt fetch timeout")
	flag.Float64Var(&opts.FailureBudget, "failure-budget", 0.05, "fraction of a term sweep allowed to fail after retries before aborting (0 = strict)")
	flag.Float64Var(&opts.ShedBudget, "shed-budget", 0.05, "fraction of a term sweep allowed to end shed by server admission control (0 = strict)")
	flag.IntVar(&opts.BreakerThreshold, "breaker-threshold", 0, "consecutive failures that open the per-browser circuit breaker (0 = off)")
	flag.DurationVar(&opts.BreakerCooldown, "breaker-cooldown", time.Minute, "open-state dwell before the breaker probes the server again")
	flag.DurationVar(&opts.Deadline, "deadline", 0, "end-to-end fetch deadline propagated to the server as X-Deadline-Ms (0 = none)")
	flag.Int64Var(&opts.MaxBody, "max-body", 0, "response body byte cap; oversized pages fail permanently (0 = browser default)")
	flag.StringVar(&opts.Checkpoint, "checkpoint", "", "campaign cursor path (default: <out>.ckpt)")
	flag.BoolVar(&opts.Resume, "resume", false, "restart from the last completed term sweep in -checkpoint")
	flag.StringVar(&opts.TraceOut, "trace-out", "", "write the campaign timeline as Chrome trace-event JSON (Perfetto / chrome://tracing)")
	flag.IntVar(&opts.TraceCapacity, "trace-capacity", 0, "span ring capacity for -trace-out (0 = campaign-sized default)")
	flag.StringVar(&opts.MetricsOut, "metrics-out", "", "write a final Prometheus text metrics snapshot at campaign end")
	flag.StringVar(&opts.StatzAddr, "statz-addr", "", "serve the live audit surface (/statz, /metricsz, /tracez) on this address during the campaign")
	flag.StringVar(&opts.StatzOut, "statz-out", "", "write the final /statz snapshot JSON at campaign end")
	flag.Float64Var(&opts.DriftThreshold, "drift-threshold", 0, "sweep-over-sweep personalization drift that emits a drift event (0 = off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("v", false, "debug logging: one record per fetch with its trace ID")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(telemetry.NewLogHandler(os.Stderr, *logFormat, level))
	opts.Logger = logger

	wall := simclock.Wall()
	start := wall.Now()
	n, err := runCrawl(opts)
	if err != nil {
		logger.Error("crawl failed", "err", err)
		os.Exit(1)
	}
	logger.Info("crawl complete",
		"observations", n, "out", opts.Out,
		"elapsed", wall.Now().Sub(start).Round(time.Millisecond).String())
}
