// Command crawl runs a measurement campaign — the paper's §2 methodology —
// and writes the observations as JSON Lines for cmd/analyze.
//
// By default it spins up an in-process engine under a virtual clock, so
// "30 days" of crawling completes in seconds:
//
//	crawl -out campaign.jsonl                  # full study (240 terms × 59 locations × 5 days × 2 phases)
//	crawl -terms 8 -days 2 -out small.jsonl    # scaled-down campaign
//
// Against a live serpd instance (wall-clock time — slow by design, the
// crawler really does wait 11 minutes between queries):
//
//	crawl -server http://127.0.0.1:8080 -terms 2 -days 1 -out live.jsonl
//
// Progress is logged as structured records (-log-format json for JSON);
// -v additionally logs every fetch with its minted trace ID, which joins
// the record to serpd's access log and the stored observation.
package main

import (
	"flag"
	"log/slog"
	"os"
	"time"

	"geoserp/internal/telemetry"
)

func main() {
	var opts options
	flag.StringVar(&opts.Server, "server", "", "existing serpd URL (default: run an in-process engine under virtual time)")
	flag.StringVar(&opts.Out, "out", "campaign.jsonl", "output JSONL path")
	flag.IntVar(&opts.TermsPerCategory, "terms", 0, "terms per category (0 = full corpus)")
	flag.IntVar(&opts.Days, "days", 5, "days per phase")
	flag.IntVar(&opts.Machines, "machines", 44, "crawl machines in the /24")
	flag.Uint64Var(&opts.Seed, "seed", 1, "engine seed (in-process mode)")
	flag.StringVar(&opts.PinnedDatacenter, "datacenter", "dc-0", "pinned datacenter ('' = unpinned)")
	flag.DurationVar(&opts.Wait, "wait", 11*time.Minute, "spacing between successive terms")
	flag.StringVar(&opts.CorpusPath, "corpus", "", "custom query corpus JSON (default: the study's 240 terms)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("v", false, "debug logging: one record per fetch with its trace ID")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(telemetry.NewLogHandler(os.Stderr, *logFormat, level))
	opts.Logger = logger

	start := time.Now()
	n, err := runCrawl(opts)
	if err != nil {
		logger.Error("crawl failed", "err", err)
		os.Exit(1)
	}
	logger.Info("crawl complete",
		"observations", n, "out", opts.Out,
		"elapsed", time.Since(start).Round(time.Millisecond).String())
}
