package geoserp

import (
	"testing"

	"geoserp/internal/queries"
)

func TestStudyLifecycle(t *testing.T) {
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if study.ServerURL() == "" {
		t.Fatal("no server URL")
	}
	phases := study.StudyPhases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
}

func TestScaledPhasesCapping(t *testing.T) {
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	phases := study.ScaledPhases(4, 2)
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	if len(phases[0].Terms) != 8 { // 4 local + 4 controversial
		t.Fatalf("phase 0 terms = %d, want 8", len(phases[0].Terms))
	}
	if len(phases[1].Terms) != 4 {
		t.Fatalf("phase 1 terms = %d, want 4", len(phases[1].Terms))
	}
	if phases[0].Days != 2 {
		t.Fatalf("days = %d", phases[0].Days)
	}
	// Zero caps mean "full study".
	full := study.ScaledPhases(0, 0)
	if len(full[0].Terms) != 120 || full[0].Days != 5 {
		t.Fatalf("uncapped phases wrong: %d terms, %d days", len(full[0].Terms), full[0].Days)
	}
}

func TestStudySmallCampaignAndAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	obs, err := study.RunPhases(study.ScaledPhases(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	ds, err := NewDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	if cells := ds.NoiseByGranularity(); len(cells) == 0 {
		t.Fatal("no noise cells")
	}
	if cells := ds.PersonalizationByGranularity(); len(cells) == 0 {
		t.Fatal("no personalization cells")
	}
}

func TestStudyValidationFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	terms := StudyCorpus().Category(queries.Controversial)[:4]
	res, err := study.RunValidation(terms, Point{Lat: 41.4993, Lon: -81.6944}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terms != 4 {
		t.Fatalf("terms = %d", res.Terms)
	}
	if res.MeanResultOverlap < 0.85 {
		t.Fatalf("overlap = %.2f, want >= 0.85 (paper: 94%%)", res.MeanResultOverlap)
	}
}

func TestFacadeCorpusAndLocations(t *testing.T) {
	if got := StudyCorpus().Len(); got != 240 {
		t.Fatalf("corpus = %d", got)
	}
	if got := StudyLocations().Len(); got != 59 {
		t.Fatalf("locations = %d", got)
	}
	if got := len(Table1Terms()); got != 18 {
		t.Fatalf("table 1 = %d", got)
	}
	if DefaultEngineConfig().Buckets == 0 || DefaultCrawlerConfig().Machines != 44 {
		t.Fatal("default configs wrong")
	}
}
